//! Detector ensembles and multi-level screening.
//!
//! The paper's discussion (Section VII) recommends "multi-level detection
//! approaches as presented in [Ozsoy et al.]" before augmenting a detector
//! with Valkyrie, and cites the mixture-of-experts design of Karapoola et
//! al. \[33\]. This module provides the two composition patterns those works
//! use:
//!
//! * [`EnsembleDetector`] — run several detectors on the same window each
//!   epoch and combine their votes with a [`CombinationRule`];
//! * [`MultiLevelDetector`] — a cheap always-on *screen* whose malicious
//!   verdicts are re-checked by an expensive *confirmer* (Ozsoy et al.'s
//!   two-level malware-aware pipeline). The confirmer only runs on screened
//!   epochs, which is the entire point: its invocation count is exposed so
//!   the cost saving can be measured.
//!
//! Both compose anything implementing [`Detector`], including each other,
//! and feed Valkyrie exactly one inference per epoch like any other
//! detector.
//!
//! # Examples
//!
//! ```
//! use valkyrie_detect::{Detector, ScriptedDetector};
//! use valkyrie_detect::ensemble::{CombinationRule, EnsembleDetector};
//! use valkyrie_core::{Classification, ProcessId};
//! use valkyrie_hpc::SampleWindow;
//!
//! let mut d = EnsembleDetector::new(
//!     "demo",
//!     vec![
//!         Box::new(ScriptedDetector::constant(Classification::Malicious)),
//!         Box::new(ScriptedDetector::constant(Classification::Benign)),
//!         Box::new(ScriptedDetector::constant(Classification::Malicious)),
//!     ],
//!     CombinationRule::Majority,
//! );
//! let w = SampleWindow::new(4);
//! assert_eq!(d.infer(ProcessId(1), &w), Classification::Malicious);
//! ```

use crate::Detector;
use std::fmt;
use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::SampleWindow;

/// How an [`EnsembleDetector`] combines member votes into one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinationRule {
    /// Malicious if *any* member says malicious (maximum recall — the
    /// union of the members' detection surfaces, at the union of their
    /// false-positive rates).
    Any,
    /// Malicious only if *all* members agree (minimum false positives, at
    /// the cost of recall).
    All,
    /// Malicious if strictly more than half of the members say malicious.
    Majority,
    /// Malicious if at least `k` members say malicious.
    AtLeast(usize),
}

impl CombinationRule {
    /// Applies the rule to `malicious` votes out of `total` members.
    pub fn decide(&self, malicious: usize, total: usize) -> Classification {
        let flagged = match *self {
            CombinationRule::Any => malicious >= 1,
            CombinationRule::All => total > 0 && malicious == total,
            CombinationRule::Majority => 2 * malicious > total,
            CombinationRule::AtLeast(k) => malicious >= k,
        };
        if flagged {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

/// A voting ensemble over heterogeneous detectors (mixture-of-experts
/// style, Karapoola et al. \[33\]).
///
/// Every member sees every window; the [`CombinationRule`] folds their
/// per-epoch votes into the single inference Valkyrie consumes.
pub struct EnsembleDetector {
    name: String,
    members: Vec<Box<dyn Detector>>,
    rule: CombinationRule,
}

impl EnsembleDetector {
    /// Builds an ensemble from owned member detectors.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty — an ensemble with no experts cannot
    /// produce an inference.
    pub fn new(
        name: impl Into<String>,
        members: Vec<Box<dyn Detector>>,
        rule: CombinationRule,
    ) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self {
            name: name.into(),
            members,
            rule,
        }
    }

    /// The combination rule in use.
    pub fn rule(&self) -> CombinationRule {
        self.rule
    }

    /// Number of member detectors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false: the constructor rejects empty ensembles.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs all members on the window and returns the raw vote count
    /// (malicious votes, total members) without combining.
    ///
    /// Exposed so callers can log expert disagreement (`C-INTERMEDIATE`).
    pub fn poll(&mut self, pid: ProcessId, window: &SampleWindow) -> (usize, usize) {
        let mut malicious = 0;
        for member in &mut self.members {
            if member.infer(pid, window).is_malicious() {
                malicious += 1;
            }
        }
        (malicious, self.members.len())
    }
}

impl fmt::Debug for EnsembleDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnsembleDetector")
            .field("name", &self.name)
            .field(
                "members",
                &self.members.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .field("rule", &self.rule)
            .finish()
    }
}

impl Detector for EnsembleDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&mut self, pid: ProcessId, window: &SampleWindow) -> Classification {
        let (malicious, total) = self.poll(pid, window);
        self.rule.decide(malicious, total)
    }

    /// Confidence = the malicious vote fraction — the expert disagreement
    /// the combination rule collapses to one bit.
    fn infer_confidence(&mut self, pid: ProcessId, window: &SampleWindow) -> f64 {
        let (malicious, total) = self.poll(pid, window);
        malicious as f64 / total as f64
    }
}

/// A two-level detector: a cheap screen runs every epoch, and an expensive
/// confirmer is consulted only on screened (malicious) epochs.
///
/// The final inference is malicious only when *both* levels agree, so the
/// screen bounds the confirmer's workload and the confirmer bounds the
/// pipeline's false-positive rate.
///
/// # Examples
///
/// ```
/// use valkyrie_detect::{Detector, ScriptedDetector};
/// use valkyrie_detect::ensemble::MultiLevelDetector;
/// use valkyrie_core::{Classification, ProcessId};
/// use valkyrie_hpc::SampleWindow;
///
/// let screen = ScriptedDetector::cycle(vec![
///     Classification::Malicious,
///     Classification::Benign,
/// ]);
/// let confirm = ScriptedDetector::constant(Classification::Benign);
/// let mut d = MultiLevelDetector::new("two-level", Box::new(screen), Box::new(confirm));
/// let w = SampleWindow::new(4);
/// // Screen flags, confirmer overrules → benign; confirmer ran once.
/// assert_eq!(d.infer(ProcessId(1), &w), Classification::Benign);
/// // Screen passes → confirmer not consulted.
/// assert_eq!(d.infer(ProcessId(1), &w), Classification::Benign);
/// assert_eq!(d.confirmations(), 1);
/// assert_eq!(d.inferences(), 2);
/// ```
pub struct MultiLevelDetector {
    name: String,
    screen: Box<dyn Detector>,
    confirm: Box<dyn Detector>,
    inferences: u64,
    confirmations: u64,
}

impl MultiLevelDetector {
    /// Builds a two-level pipeline from a screen and a confirmer.
    pub fn new(
        name: impl Into<String>,
        screen: Box<dyn Detector>,
        confirm: Box<dyn Detector>,
    ) -> Self {
        Self {
            name: name.into(),
            screen,
            confirm,
            inferences: 0,
            confirmations: 0,
        }
    }

    /// Total inferences served.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// Times the expensive confirmer was invoked.
    pub fn confirmations(&self) -> u64 {
        self.confirmations
    }

    /// Fraction of epochs on which the confirmer ran (`0.0` if no
    /// inferences yet) — the cost-saving metric of two-level detection.
    pub fn confirmation_rate(&self) -> f64 {
        if self.inferences == 0 {
            0.0
        } else {
            self.confirmations as f64 / self.inferences as f64
        }
    }
}

impl fmt::Debug for MultiLevelDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiLevelDetector")
            .field("name", &self.name)
            .field("screen", &self.screen.name())
            .field("confirm", &self.confirm.name())
            .field("inferences", &self.inferences)
            .field("confirmations", &self.confirmations)
            .finish()
    }
}

impl Detector for MultiLevelDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&mut self, pid: ProcessId, window: &SampleWindow) -> Classification {
        self.inferences += 1;
        if self.screen.infer(pid, window).is_malicious() {
            self.confirmations += 1;
            self.confirm.infer(pid, window)
        } else {
            Classification::Benign
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptedDetector;
    use Classification::{Benign, Malicious};

    fn window() -> SampleWindow {
        SampleWindow::new(4)
    }

    fn boxed(c: Classification) -> Box<dyn Detector> {
        Box::new(ScriptedDetector::constant(c))
    }

    #[test]
    fn combination_rules_decide_correctly() {
        assert_eq!(CombinationRule::Any.decide(0, 3), Benign);
        assert_eq!(CombinationRule::Any.decide(1, 3), Malicious);
        assert_eq!(CombinationRule::All.decide(2, 3), Benign);
        assert_eq!(CombinationRule::All.decide(3, 3), Malicious);
        assert_eq!(CombinationRule::Majority.decide(1, 3), Benign);
        assert_eq!(CombinationRule::Majority.decide(2, 3), Malicious);
        assert_eq!(CombinationRule::Majority.decide(2, 4), Benign); // ties are benign
        assert_eq!(CombinationRule::AtLeast(2).decide(1, 5), Benign);
        assert_eq!(CombinationRule::AtLeast(2).decide(2, 5), Malicious);
    }

    #[test]
    fn all_rule_on_empty_vote_count_is_benign() {
        assert_eq!(CombinationRule::All.decide(0, 0), Benign);
    }

    /// Pins the degenerate corners of every rule on an empty vote count
    /// (`total == 0`) — the fusion threshold mapping must reproduce these.
    #[test]
    fn degenerate_empty_totals_per_rule() {
        assert_eq!(CombinationRule::Any.decide(0, 0), Benign);
        assert_eq!(CombinationRule::All.decide(0, 0), Benign);
        assert_eq!(CombinationRule::Majority.decide(0, 0), Benign);
        // AtLeast(0) is vacuously satisfied — even with no members.
        assert_eq!(CombinationRule::AtLeast(0).decide(0, 0), Malicious);
        assert_eq!(CombinationRule::AtLeast(1).decide(0, 0), Benign);
    }

    /// Pins exact-tie behaviour: a split panel never condemns under
    /// Majority, and `AtLeast(k)` fires at exactly `k` votes (closed
    /// boundary).
    #[test]
    fn degenerate_exact_ties_per_rule() {
        // Even panels splitting evenly: strictly-more-than-half is false.
        assert_eq!(CombinationRule::Majority.decide(1, 2), Benign);
        assert_eq!(CombinationRule::Majority.decide(3, 6), Benign);
        assert_eq!(CombinationRule::Majority.decide(50, 100), Benign);
        // One vote past the tie flips it.
        assert_eq!(CombinationRule::Majority.decide(4, 6), Malicious);
        // AtLeast at its exact boundary (>= is closed below).
        assert_eq!(CombinationRule::AtLeast(3).decide(3, 3), Malicious);
        assert_eq!(CombinationRule::AtLeast(3).decide(2, 3), Benign);
        // k beyond the panel size can never fire.
        assert_eq!(CombinationRule::AtLeast(4).decide(3, 3), Benign);
        // Single-member panels: Majority needs the whole panel.
        assert_eq!(CombinationRule::Majority.decide(0, 1), Benign);
        assert_eq!(CombinationRule::Majority.decide(1, 1), Malicious);
        // All on a single member is that member's vote.
        assert_eq!(CombinationRule::All.decide(1, 1), Malicious);
        assert_eq!(CombinationRule::All.decide(0, 1), Benign);
    }

    #[test]
    fn majority_ensemble_follows_most_members() {
        let mut d = EnsembleDetector::new(
            "maj",
            vec![boxed(Malicious), boxed(Malicious), boxed(Benign)],
            CombinationRule::Majority,
        );
        assert_eq!(d.infer(ProcessId(1), &window()), Malicious);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.name(), "maj");
    }

    #[test]
    fn any_vs_all_bracketing() {
        // One alarmist member: Any flags, All does not.
        let mut any = EnsembleDetector::new(
            "any",
            vec![boxed(Malicious), boxed(Benign)],
            CombinationRule::Any,
        );
        let mut all = EnsembleDetector::new(
            "all",
            vec![boxed(Malicious), boxed(Benign)],
            CombinationRule::All,
        );
        assert_eq!(any.infer(ProcessId(1), &window()), Malicious);
        assert_eq!(all.infer(ProcessId(1), &window()), Benign);
    }

    #[test]
    fn poll_exposes_raw_votes() {
        let mut d = EnsembleDetector::new(
            "poll",
            vec![boxed(Malicious), boxed(Benign), boxed(Malicious)],
            CombinationRule::Majority,
        );
        assert_eq!(d.poll(ProcessId(1), &window()), (2, 3));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        let _ = EnsembleDetector::new("empty", vec![], CombinationRule::Any);
    }

    #[test]
    fn multi_level_requires_both_levels_to_agree() {
        let screen = ScriptedDetector::constant(Malicious);
        let confirm = ScriptedDetector::cycle(vec![Malicious, Benign]);
        let mut d = MultiLevelDetector::new("ml", Box::new(screen), Box::new(confirm));
        assert_eq!(d.infer(ProcessId(1), &window()), Malicious);
        assert_eq!(d.infer(ProcessId(1), &window()), Benign);
        assert_eq!(d.confirmations(), 2);
    }

    #[test]
    fn multi_level_saves_confirmer_work_on_benign_load() {
        // Screen flags 1 epoch in 5 → the expensive model runs on 20% of
        // epochs instead of all of them.
        let screen = ScriptedDetector::cycle(vec![Malicious, Benign, Benign, Benign, Benign]);
        let confirm = ScriptedDetector::constant(Benign);
        let mut d = MultiLevelDetector::new("ml", Box::new(screen), Box::new(confirm));
        for _ in 0..100 {
            let _ = d.infer(ProcessId(1), &window());
        }
        assert_eq!(d.inferences(), 100);
        assert_eq!(d.confirmations(), 20);
        assert!((d.confirmation_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn confirmation_rate_of_fresh_detector_is_zero() {
        let d = MultiLevelDetector::new("ml", boxed(Benign), boxed(Benign));
        assert_eq!(d.confirmation_rate(), 0.0);
    }

    #[test]
    fn ensembles_nest() {
        // A multi-level pipeline whose confirmer is itself an ensemble.
        let screen = ScriptedDetector::constant(Malicious);
        let panel = EnsembleDetector::new(
            "panel",
            vec![boxed(Malicious), boxed(Malicious), boxed(Benign)],
            CombinationRule::Majority,
        );
        let mut d = MultiLevelDetector::new("nested", Box::new(screen), Box::new(panel));
        assert_eq!(d.infer(ProcessId(1), &window()), Malicious);
    }
}
