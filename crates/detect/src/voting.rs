//! Majority voting over a detector's per-epoch inferences.
//!
//! The paper's terminable-state decision is only taken once the detector has
//! accumulated `N*` measurements — at which point its verdict should be
//! based on all of them, not just the latest sample. [`VotingDetector`]
//! wraps any per-epoch detector: up to `vote_after` observed measurements it
//! passes the inner inference through unchanged (driving the epoch-by-epoch
//! throttling), and from then on it answers with the majority vote over the
//! retained window — the higher-efficacy verdict the termination decision
//! relies on.

use crate::Detector;
use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::{HpcSample, SampleWindow};

/// A per-sample scorer usable for windowed voting.
///
/// Implemented by [`StatisticalDetector`](crate::StatisticalDetector); any
/// detector that can classify a single sample can be wrapped.
pub trait SampleClassifier {
    /// Classifies one measurement.
    fn classify_sample(&self, sample: &HpcSample) -> Classification;
}

impl SampleClassifier for crate::StatisticalDetector {
    fn classify_sample(&self, sample: &HpcSample) -> Classification {
        if self.score(sample) > self.threshold() {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

/// Majority-vote wrapper (see module docs).
///
/// # Examples
///
/// ```
/// use valkyrie_detect::{Detector, StatisticalDetector, VotingDetector};
/// use valkyrie_core::{Classification, ProcessId};
/// use valkyrie_hpc::{SampleWindow, Signature};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let benign: Vec<_> = (0..200).map(|_| Signature::cpu_bound().sample(&mut rng, 1.0)).collect();
/// let inner = StatisticalDetector::fit_normalized(&benign, 4.0);
/// let mut det = VotingDetector::new(inner, 5);
///
/// let mut w = SampleWindow::new(16);
/// for _ in 0..8 {
///     w.push(Signature::cpu_bound().sample(&mut rng, 1.0));
/// }
/// assert_eq!(det.infer(ProcessId(1), &w), Classification::Benign);
/// ```
#[derive(Debug, Clone)]
pub struct VotingDetector<C> {
    inner: C,
    vote_after: u64,
}

impl<C: SampleClassifier> VotingDetector<C> {
    /// Wraps `inner`; majority voting starts once `vote_after` measurements
    /// have been observed for the process.
    pub fn new(inner: C, vote_after: u64) -> Self {
        Self { inner, vote_after }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Majority vote over the window (malicious iff strictly more than half
    /// of the retained samples classify malicious).
    pub fn majority(&self, window: &SampleWindow) -> Classification {
        let malicious = window
            .samples()
            .iter()
            .filter(|s| self.inner.classify_sample(s) == Classification::Malicious)
            .count();
        if 2 * malicious > window.len() {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

impl<C: SampleClassifier> Detector for VotingDetector<C> {
    fn name(&self) -> &str {
        "majority-voting"
    }

    fn infer(&mut self, _pid: ProcessId, window: &SampleWindow) -> Classification {
        let Some(latest) = window.latest() else {
            return Classification::Benign;
        };
        if window.total_observed() < self.vote_after {
            self.inner.classify_sample(latest)
        } else {
            self.majority(window)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatisticalDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use valkyrie_hpc::Signature;

    fn detector(vote_after: u64) -> (VotingDetector<StatisticalDetector>, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let benign: Vec<HpcSample> = (0..400)
            .flat_map(|_| {
                [
                    Signature::cpu_bound().sample(&mut rng, 1.0),
                    Signature::memory_bound().sample(&mut rng, 1.0),
                    Signature::graphics_bound().sample(&mut rng, 1.0),
                ]
            })
            .collect();
        (
            VotingDetector::new(
                StatisticalDetector::fit_normalized(&benign, 4.0),
                vote_after,
            ),
            rng,
        )
    }

    #[test]
    fn passes_through_before_vote_threshold() {
        let (mut det, mut rng) = detector(100);
        let mut w = SampleWindow::new(100);
        w.push(Signature::hammering().sample(&mut rng, 1.0));
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Malicious);
    }

    #[test]
    fn majority_saves_bursty_benign_process() {
        let (mut det, mut rng) = detector(10);
        let mut w = SampleWindow::new(30);
        // 30% of epochs burst (look malicious), 70% are clean.
        for i in 0..30 {
            if i % 10 < 3 {
                w.push(Signature::hammering().sample(&mut rng, 1.0));
            } else {
                w.push(Signature::cpu_bound().sample(&mut rng, 1.0));
            }
        }
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Benign);
    }

    #[test]
    fn majority_still_condemns_attacks() {
        let (mut det, mut rng) = detector(10);
        let mut w = SampleWindow::new(30);
        for _ in 0..30 {
            w.push(Signature::hammering().sample(&mut rng, 1.0));
        }
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Malicious);
    }

    #[test]
    fn empty_window_is_benign() {
        let (mut det, _) = detector(1);
        let w = SampleWindow::new(4);
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Benign);
    }
}
