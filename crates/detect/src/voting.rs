//! Majority voting over a detector's per-epoch inferences.
//!
//! The paper's terminable-state decision is only taken once the detector has
//! accumulated `N*` measurements — at which point its verdict should be
//! based on all of them, not just the latest sample. [`VotingDetector`]
//! wraps any per-epoch detector: up to `vote_after` observed measurements it
//! passes the inner inference through unchanged (driving the epoch-by-epoch
//! throttling), and from then on it answers with the majority vote over the
//! retained window — the higher-efficacy verdict the termination decision
//! relies on.

use crate::Detector;
use std::collections::{HashMap, VecDeque};
use valkyrie_core::hash::FxBuildHasher;
use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::{HpcSample, SampleWindow};

/// A per-sample scorer usable for windowed voting.
///
/// Implemented by [`StatisticalDetector`](crate::StatisticalDetector); any
/// detector that can classify a single sample can be wrapped.
pub trait SampleClassifier {
    /// Classifies one measurement.
    fn classify_sample(&self, sample: &HpcSample) -> Classification;
}

impl SampleClassifier for crate::StatisticalDetector {
    fn classify_sample(&self, sample: &HpcSample) -> Classification {
        if self.score(sample) > self.threshold() {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

/// Majority-vote wrapper (see module docs).
///
/// # Examples
///
/// ```
/// use valkyrie_detect::{Detector, StatisticalDetector, VotingDetector};
/// use valkyrie_core::{Classification, ProcessId};
/// use valkyrie_hpc::{SampleWindow, Signature};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let benign: Vec<_> = (0..200).map(|_| Signature::cpu_bound().sample(&mut rng, 1.0)).collect();
/// let inner = StatisticalDetector::fit_normalized(&benign, 4.0);
/// let mut det = VotingDetector::new(inner, 5);
///
/// let mut w = SampleWindow::new(16);
/// for _ in 0..8 {
///     w.push(Signature::cpu_bound().sample(&mut rng, 1.0));
/// }
/// assert_eq!(det.infer(ProcessId(1), &w), Classification::Benign);
/// ```
#[derive(Debug, Clone)]
pub struct VotingDetector<C> {
    inner: C,
    vote_after: u64,
    votes: HashMap<ProcessId, VoteRing, FxBuildHasher>,
}

/// Cached per-process vote counts so each sample is classified exactly once.
///
/// `flags` mirrors the process's retained window (oldest first); `observed`
/// is the window's `total_observed` at the last inference, used to detect
/// whether the window advanced by exactly one sample (incremental update) or
/// was reset/skipped (full rebuild).
#[derive(Debug, Clone, Default)]
struct VoteRing {
    flags: VecDeque<bool>,
    observed: u64,
    malicious: usize,
}

impl VoteRing {
    fn push(&mut self, flag: bool, retained: usize) {
        self.flags.push_back(flag);
        self.malicious += usize::from(flag);
        while self.flags.len() > retained {
            let evicted = self.flags.pop_front().expect("non-empty ring");
            self.malicious -= usize::from(evicted);
        }
    }
}

impl<C: SampleClassifier> VotingDetector<C> {
    /// Wraps `inner`; majority voting starts once `vote_after` measurements
    /// have been observed for the process.
    pub fn new(inner: C, vote_after: u64) -> Self {
        Self {
            inner,
            vote_after,
            votes: HashMap::default(),
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Rolls the cached vote state forward for this epoch and returns
    /// `(total_observed, latest_flag, malicious, ring_len)`; `None` on an
    /// empty window (stale state dropped). Shared by the binary and the
    /// confidence inference paths.
    fn observe_window(
        &mut self,
        pid: ProcessId,
        window: &SampleWindow,
    ) -> Option<(u64, bool, usize, usize)> {
        let Some(latest) = window.latest() else {
            // A fresh (possibly reset) window: drop any stale vote state so
            // the next sample rebuilds from scratch.
            self.votes.remove(&pid);
            return None;
        };
        let total = window.total_observed();
        let state = self.votes.entry(pid).or_default();
        // Before this push the window held `len - 1` samples (still filling)
        // or `len` (full, oldest evicted); the ring must mirror that count.
        let expected = if total <= window.capacity() as u64 {
            window.len() - 1
        } else {
            window.len()
        };
        if total == state.observed + 1 && state.flags.len() == expected {
            // The window advanced by exactly one sample since the last call:
            // classify only the newcomer and roll the cached counts forward.
            let flag = self.inner.classify_sample(latest) == Classification::Malicious;
            state.push(flag, window.len());
        } else {
            // Reset, restore, or skipped epochs — rebuild the ring from the
            // retained window (oldest first).
            state.flags.clear();
            state.malicious = 0;
            for s in window.samples() {
                let flag = self.inner.classify_sample(s) == Classification::Malicious;
                state.flags.push_back(flag);
                state.malicious += usize::from(flag);
            }
        }
        state.observed = total;
        let latest_flag = *state.flags.back().expect("window is non-empty");
        Some((total, latest_flag, state.malicious, state.flags.len()))
    }

    /// Majority vote over the window (malicious iff strictly more than half
    /// of the retained samples classify malicious).
    pub fn majority(&self, window: &SampleWindow) -> Classification {
        let malicious = window
            .samples()
            .iter()
            .filter(|s| self.inner.classify_sample(s) == Classification::Malicious)
            .count();
        if 2 * malicious > window.len() {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

impl<C: SampleClassifier> Detector for VotingDetector<C> {
    fn name(&self) -> &str {
        "majority-voting"
    }

    fn infer(&mut self, pid: ProcessId, window: &SampleWindow) -> Classification {
        let Some((total, latest_flag, malicious, len)) = self.observe_window(pid, window) else {
            return Classification::Benign;
        };
        if total < self.vote_after {
            // Pre-vote pass-through: the verdict on the latest sample alone.
            if latest_flag {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        } else if 2 * malicious > len {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }

    /// Confidence = the malicious fraction of the retained vote ring once
    /// voting has started; before `vote_after` it is the latest sample's
    /// binary verdict (matching the pass-through phase of `infer`).
    fn infer_confidence(&mut self, pid: ProcessId, window: &SampleWindow) -> f64 {
        let Some((total, latest_flag, malicious, len)) = self.observe_window(pid, window) else {
            return 0.0;
        };
        if total < self.vote_after {
            if latest_flag {
                1.0
            } else {
                0.0
            }
        } else {
            malicious as f64 / len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatisticalDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use valkyrie_hpc::Signature;

    fn detector(vote_after: u64) -> (VotingDetector<StatisticalDetector>, StdRng) {
        let mut rng = StdRng::seed_from_u64(17);
        let benign: Vec<HpcSample> = (0..400)
            .flat_map(|_| {
                [
                    Signature::cpu_bound().sample(&mut rng, 1.0),
                    Signature::memory_bound().sample(&mut rng, 1.0),
                    Signature::graphics_bound().sample(&mut rng, 1.0),
                ]
            })
            .collect();
        (
            VotingDetector::new(
                StatisticalDetector::fit_normalized(&benign, 4.0),
                vote_after,
            ),
            rng,
        )
    }

    #[test]
    fn passes_through_before_vote_threshold() {
        let (mut det, mut rng) = detector(100);
        let mut w = SampleWindow::new(100);
        w.push(Signature::hammering().sample(&mut rng, 1.0));
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Malicious);
    }

    #[test]
    fn majority_saves_bursty_benign_process() {
        let (mut det, mut rng) = detector(10);
        let mut w = SampleWindow::new(30);
        // 30% of epochs burst (look malicious), 70% are clean.
        for i in 0..30 {
            if i % 10 < 3 {
                w.push(Signature::hammering().sample(&mut rng, 1.0));
            } else {
                w.push(Signature::cpu_bound().sample(&mut rng, 1.0));
            }
        }
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Benign);
    }

    #[test]
    fn majority_still_condemns_attacks() {
        let (mut det, mut rng) = detector(10);
        let mut w = SampleWindow::new(30);
        for _ in 0..30 {
            w.push(Signature::hammering().sample(&mut rng, 1.0));
        }
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Malicious);
    }

    #[test]
    fn empty_window_is_benign() {
        let (mut det, _) = detector(1);
        let w = SampleWindow::new(4);
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Benign);
    }

    /// The cached-vote fast path must answer exactly like classifying the
    /// whole window from scratch — across fill-up, steady-state eviction,
    /// interleaved processes, and a window reset mid-stream.
    #[test]
    fn incremental_votes_match_full_rescan() {
        let (mut det, mut rng) = detector(5);
        let mut windows = [SampleWindow::new(8), SampleWindow::new(6)];
        let pids = [ProcessId(1), ProcessId(2)];
        let check =
            |det: &mut VotingDetector<StatisticalDetector>, w: &SampleWindow, pid: ProcessId| {
                let got = det.infer(pid, w);
                let expected = if w.total_observed() < 5 {
                    det.inner().classify_sample(w.latest().expect("pushed"))
                } else {
                    det.majority(w)
                };
                assert_eq!(
                    got,
                    expected,
                    "pid {pid:?} after {} obs",
                    w.total_observed()
                );
            };
        for i in 0..40_usize {
            let which = i % 2;
            let s = if i % 3 == 0 {
                Signature::hammering().sample(&mut rng, 1.0)
            } else {
                Signature::cpu_bound().sample(&mut rng, 1.0)
            };
            windows[which].push(s);
            check(&mut det, &windows[which], pids[which]);
            if i == 23 {
                // Simulate a restore-and-recycle: the window restarts.
                windows[0] = SampleWindow::new(8);
                assert_eq!(det.infer(pids[0], &windows[0]), Classification::Benign);
            }
        }
    }
}
