//! Detectors built on the `valkyrie-ml` models.
//!
//! Three inference styles from the paper (Section IV-A):
//!
//! * "the SVM and XGBoost models classify each measurement individually and
//!   infer program behavior based on the classification of majority of these
//!   measurements" → [`MajorityVoteDetector`];
//! * "the ANNs take a time series of HPC measurements as input" → the ANNs
//!   see the window as pooled features ([`PooledDetector`]) and the LSTM
//!   consumes the sequence directly ([`LstmDetector`]).

use crate::Detector;
use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::SampleWindow;
use valkyrie_ml::{BinaryClassifier, Lstm, LstmScratch, Standardizer};

/// Majority voting over per-measurement classifications (SVM / XGBoost
/// style): malicious when more than half of the window's measurements are
/// individually classified malicious.
///
/// More measurements → more votes → better efficacy, which is exactly the
/// Fig. 1 trend Valkyrie exploits.
#[derive(Debug, Clone)]
pub struct MajorityVoteDetector<C> {
    name: String,
    model: C,
    standardizer: Standardizer,
    feats: Vec<Vec<f64>>,
    scores: Vec<f64>,
}

impl<C: BinaryClassifier> MajorityVoteDetector<C> {
    /// Wraps a trained per-measurement classifier.
    pub fn new(name: impl Into<String>, model: C, standardizer: Standardizer) -> Self {
        Self {
            name: name.into(),
            model,
            standardizer,
            feats: Vec::new(),
            scores: Vec::new(),
        }
    }

    /// Fraction of the window's measurements classified malicious.
    pub fn vote_fraction(&self, window: &SampleWindow) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        let malicious = window
            .samples()
            .iter()
            .filter(|s| {
                self.model
                    .classify(&self.standardizer.transform(s.as_features()))
            })
            .count();
        malicious as f64 / window.len() as f64
    }
}

impl<C: BinaryClassifier> Detector for MajorityVoteDetector<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&mut self, _pid: ProcessId, window: &SampleWindow) -> Classification {
        if window.is_empty() {
            return Classification::Benign;
        }
        // Batched path: one `score_batch_into` over the window instead of a
        // per-sample `classify` — same scores bit-for-bit (property-pinned
        // per model), but through each model's matrix/tree-walk kernel.
        self.feats.clear();
        self.feats.extend(
            window
                .samples()
                .iter()
                .map(|s| self.standardizer.transform(s.as_features())),
        );
        self.model.score_batch_into(&self.feats, &mut self.scores);
        let malicious = self.scores.iter().filter(|&&s| s >= 0.5).count();
        if 2 * malicious > window.len() {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }

    /// Confidence = the fraction of the window's measurements classified
    /// malicious (the vote margin the binary path collapses to one bit).
    fn infer_confidence(&mut self, _pid: ProcessId, window: &SampleWindow) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        self.feats.clear();
        self.feats.extend(
            window
                .samples()
                .iter()
                .map(|s| self.standardizer.transform(s.as_features())),
        );
        self.model.score_batch_into(&self.feats, &mut self.scores);
        let malicious = self.scores.iter().filter(|&&s| s >= 0.5).count();
        malicious as f64 / window.len() as f64
    }
}

/// Mean-pooled classification (feed-forward ANN style): the window's
/// per-event means are standardised and classified as one feature vector.
/// Pooling over more measurements suppresses noise, improving efficacy with
/// time.
#[derive(Debug, Clone)]
pub struct PooledDetector<C> {
    name: String,
    model: C,
    standardizer: Standardizer,
}

impl<C: BinaryClassifier> PooledDetector<C> {
    /// Wraps a trained classifier over pooled features.
    pub fn new(name: impl Into<String>, model: C, standardizer: Standardizer) -> Self {
        Self {
            name: name.into(),
            model,
            standardizer,
        }
    }

    /// The model's score on the pooled window.
    pub fn pooled_score(&self, window: &SampleWindow) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        let mean = window.mean();
        self.model
            .score(&self.standardizer.transform(mean.as_features()))
    }
}

impl<C: BinaryClassifier> Detector for PooledDetector<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&mut self, _pid: ProcessId, window: &SampleWindow) -> Classification {
        if self.pooled_score(window) >= 0.5 {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }

    /// Confidence = the model's pooled score, clamped to `[0, 1]` (tree
    /// ensembles can step slightly outside it).
    fn infer_confidence(&mut self, _pid: ProcessId, window: &SampleWindow) -> f64 {
        self.pooled_score(window).clamp(0.0, 1.0)
    }
}

/// Sequence-prefix classification with the LSTM (the ransomware detector of
/// Section VI-C): each epoch the LSTM re-reads the standardised measurement
/// window; its input is the concatenation of the current measurement and
/// the delta from the previous one (10 + 10 = the paper's 20 input nodes).
#[derive(Debug, Clone)]
pub struct LstmDetector {
    name: String,
    model: Lstm,
    standardizer: Standardizer,
    scratch: LstmScratch,
}

impl LstmDetector {
    /// Wraps a trained LSTM. The model must accept `2 × EVENT_COUNT` inputs
    /// (current features ‖ delta features).
    pub fn new(name: impl Into<String>, model: Lstm, standardizer: Standardizer) -> Self {
        Self {
            name: name.into(),
            model,
            standardizer,
            scratch: LstmScratch::default(),
        }
    }

    /// Builds the 20-dimensional input sequence from a window.
    pub fn sequence_of(&self, window: &SampleWindow) -> Vec<Vec<f64>> {
        sequence_with_deltas(
            &window
                .samples()
                .iter()
                .map(|s| self.standardizer.transform(s.as_features()))
                .collect::<Vec<_>>(),
        )
    }

    /// LSTM probability on the current window.
    pub fn probability(&self, window: &SampleWindow) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        self.model.predict_proba(&self.sequence_of(window))
    }

    /// Like [`LstmDetector::probability`] but reuses a caller-owned forward
    /// scratch — the allocation-free path `infer` takes every epoch.
    pub fn probability_with(&self, window: &SampleWindow, scratch: &mut LstmScratch) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        self.model
            .predict_proba_with(&self.sequence_of(window), scratch)
    }
}

impl Detector for LstmDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&mut self, _pid: ProcessId, window: &SampleWindow) -> Classification {
        let mut scratch = std::mem::take(&mut self.scratch);
        let p = self.probability_with(window, &mut scratch);
        self.scratch = scratch;
        if p >= 0.5 {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }

    /// Confidence = the LSTM's sigmoid output (already a probability).
    fn infer_confidence(&mut self, _pid: ProcessId, window: &SampleWindow) -> f64 {
        let mut scratch = std::mem::take(&mut self.scratch);
        let p = self.probability_with(window, &mut scratch);
        self.scratch = scratch;
        p.clamp(0.0, 1.0)
    }
}

/// Concatenates each timestep with its delta from the previous timestep,
/// doubling the feature width (10 → the paper's 20 LSTM inputs).
pub fn sequence_with_deltas(seq: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(seq.len());
    for (t, x) in seq.iter().enumerate() {
        let mut v = x.clone();
        if t == 0 {
            v.extend(std::iter::repeat_n(0.0, x.len()));
        } else {
            v.extend(x.iter().zip(&seq[t - 1]).map(|(a, b)| a - b));
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use valkyrie_hpc::{HpcSample, Signature};
    use valkyrie_ml::{LinearSvm, SvmConfig};

    fn toy_training() -> (Vec<Vec<f64>>, Vec<f64>, Standardizer) {
        let mut rng = StdRng::seed_from_u64(40);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..200 {
            xs.push(
                Signature::cpu_bound()
                    .sample(&mut rng, 1.0)
                    .as_features()
                    .to_vec(),
            );
            ys.push(0.0);
            xs.push(
                Signature::llc_thrashing()
                    .sample(&mut rng, 1.0)
                    .as_features()
                    .to_vec(),
            );
            ys.push(1.0);
        }
        let std = Standardizer::fit(&xs);
        let xs_t = std.transform_all(&xs);
        (xs_t, ys, std)
    }

    fn window_of(samples: Vec<HpcSample>) -> SampleWindow {
        let mut w = SampleWindow::new(samples.len().max(1));
        for s in samples {
            w.push(s);
        }
        w
    }

    #[test]
    fn majority_vote_classifies_spy_window() {
        let (xs, ys, std) = toy_training();
        let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        let mut det = MajorityVoteDetector::new("svm-vote", svm, std);
        let mut rng = StdRng::seed_from_u64(41);
        let spy = window_of(
            (0..9)
                .map(|_| Signature::llc_thrashing().sample(&mut rng, 1.0))
                .collect(),
        );
        let benign = window_of(
            (0..9)
                .map(|_| Signature::cpu_bound().sample(&mut rng, 1.0))
                .collect(),
        );
        assert_eq!(det.infer(ProcessId(1), &spy), Classification::Malicious);
        assert_eq!(det.infer(ProcessId(2), &benign), Classification::Benign);
    }

    #[test]
    fn empty_window_is_benign_for_all_wrappers() {
        let (xs, ys, std) = toy_training();
        let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        let w = SampleWindow::new(4);
        let mut vote = MajorityVoteDetector::new("v", svm.clone(), std.clone());
        let mut pooled = PooledDetector::new("p", svm, std);
        assert_eq!(vote.infer(ProcessId(1), &w), Classification::Benign);
        assert_eq!(pooled.infer(ProcessId(1), &w), Classification::Benign);
    }

    #[test]
    fn pooled_detector_uses_window_mean() {
        let (xs, ys, std) = toy_training();
        let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        let det = PooledDetector::new("p", svm, std);
        let mut rng = StdRng::seed_from_u64(42);
        let spy = window_of(
            (0..5)
                .map(|_| Signature::llc_thrashing().sample(&mut rng, 1.0))
                .collect(),
        );
        assert!(det.pooled_score(&spy) > 0.5);
    }

    #[test]
    fn deltas_double_the_width() {
        let seq = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let out = sequence_with_deltas(&seq);
        assert_eq!(out[0], vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(out[1], vec![2.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn vote_fraction_counts_correctly() {
        let (xs, ys, std) = toy_training();
        let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        let det = MajorityVoteDetector::new("v", svm, std);
        let mut rng = StdRng::seed_from_u64(44);
        let spy = window_of(
            (0..10)
                .map(|_| Signature::llc_thrashing().sample(&mut rng, 1.0))
                .collect(),
        );
        assert!(det.vote_fraction(&spy) > 0.8);
    }
}
