//! Runtime detectors producing the per-epoch inferences Valkyrie consumes.
//!
//! The paper augments *existing* detectors; this crate provides faithful
//! stand-ins for the families it cites:
//!
//! * [`statistical`] — a z-score threshold detector over HPC samples
//!   (HexPADS / ANVIL style, used by the micro-architectural, rowhammer and
//!   cryptominer case studies). Deliberately simple and false-positive
//!   prone: "a simple statistical detector effectively demonstrates the
//!   capabilities of Valkyrie" (Section VI-A).
//! * [`ml_backed`] — wrappers turning the `valkyrie-ml` models into epoch
//!   detectors: per-measurement majority voting (SVM / XGBoost style),
//!   mean-pooled feature classification (ANN style) and sequence prefixes
//!   (LSTM style).
//! * [`scripted`] — deterministic inference streams for tests and the
//!   analytic examples.
//! * [`latency`] — a wrapper delaying any detector's verdicts by a
//!   configurable number of ticks (plus deterministic jitter), modelling
//!   slow/jittery inference for the async ingest tier.
//! * [`efficacy`] — measures F1/FPR as a function of the number of
//!   measurements (Fig. 1) and hands the result to the core `N*` planner.
//!
//! # Examples
//!
//! ```
//! use valkyrie_detect::scripted::ScriptedDetector;
//! use valkyrie_detect::Detector;
//! use valkyrie_core::{Classification, ProcessId};
//! use valkyrie_hpc::SampleWindow;
//!
//! let mut d = ScriptedDetector::cycle(vec![Classification::Malicious, Classification::Benign]);
//! let w = SampleWindow::new(4);
//! assert_eq!(d.infer(ProcessId(1), &w), Classification::Malicious);
//! assert_eq!(d.infer(ProcessId(1), &w), Classification::Benign);
//! ```

pub mod efficacy;
pub mod ensemble;
pub mod fusion;
pub mod latency;
pub mod ml_backed;
pub mod scripted;
pub mod statistical;
pub mod voting;

pub use efficacy::{measure_efficacy, measure_efficacy_votes, EfficacyGrid};
pub use ensemble::{CombinationRule, EnsembleDetector, MultiLevelDetector};
pub use fusion::{FusionEngine, FusionMember};
pub use latency::LatencyModel;
pub use ml_backed::{LstmDetector, MajorityVoteDetector, PooledDetector};
pub use scripted::ScriptedDetector;
pub use statistical::StatisticalDetector;
pub use voting::{SampleClassifier, VotingDetector};

use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::SampleWindow;

/// A runtime detector: one inference per process per epoch
/// (`D(t, i)` in the paper).
///
/// `window` is the process's measurement history collected so far; the
/// detector may use any amount of it.
pub trait Detector {
    /// Human-readable detector name (used in experiment output).
    fn name(&self) -> &str;

    /// Classifies the process behaviour for this epoch.
    fn infer(&mut self, pid: ProcessId, window: &SampleWindow) -> Classification;

    /// Classifies the process behaviour for this epoch **with a
    /// confidence** in `[0, 1]` — the evidence the fusion tier weighs
    /// (`0.0` = certainly benign, `1.0` = certainly malicious).
    ///
    /// The default maps [`Detector::infer`] to the extremes, so every
    /// binary detector is a degenerate confidence emitter; families with a
    /// native score (vote fractions, z-score margins, model
    /// probabilities) override it. Like `infer`, this *advances* the
    /// detector's per-epoch state — call one or the other per epoch, not
    /// both.
    fn infer_confidence(&mut self, pid: ProcessId, window: &SampleWindow) -> f64 {
        match self.infer(pid, window) {
            Classification::Malicious => 1.0,
            Classification::Benign => 0.0,
        }
    }
}
