//! Detector inference latency as a first-class, testable model.
//!
//! Real detector ensembles do not answer within the epoch that produced
//! their measurements: an LSTM member batches sequences, a remote scoring
//! service adds network round-trips, a GBDT re-ranks on a slower cadence.
//! [`LatencyModel`] wraps any [`Detector`] and delays every verdict by a
//! configurable number of ticks (plus optional deterministic jitter), so
//! the response tier's async ingest path
//! ([`valkyrie_core::ingest`]) can be exercised — and pinned by tests —
//! against detectors that are slow, jittery, or both.

use crate::Detector;
use std::collections::HashMap;
use valkyrie_core::hash::jitter64;
use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::SampleWindow;

/// One delayed verdict: available once the process's local tick counter
/// reaches `ready_at`. Generic over the payload so the binary and the
/// confidence inference paths share one delay mechanism.
#[derive(Debug, Clone, Copy)]
struct Pending<T> {
    ready_at: u64,
    verdict: T,
}

/// Per-process delay pipeline state.
#[derive(Debug, Clone)]
struct Pipeline<T> {
    /// Ticks this process has been inferred on (its local clock).
    tick: u64,
    /// Verdicts in flight, in computation order (`ready_at` ascending —
    /// enforced at push, so delivery can never reorder verdicts).
    in_flight: Vec<Pending<T>>,
    /// The verdict delivered most recently (held between deliveries).
    last_delivered: Option<T>,
}

// Manual impl: a derive would needlessly require `T: Default`.
impl<T> Default for Pipeline<T> {
    fn default() -> Self {
        Self {
            tick: 0,
            in_flight: Vec::new(),
            last_delivered: None,
        }
    }
}

/// Pushes this tick's verdict into the pipeline and returns the newest
/// matured verdict (`None` until the first one matures). One tick of the
/// in-order delayed-delivery mechanism, shared by both inference paths.
fn deliver<T: Copy>(pipeline: &mut Pipeline<T>, delay: u64, extra: u64, verdict: T) -> Option<T> {
    let mut ready_at = pipeline.tick + delay + extra;
    // In-order delivery: jitter may stretch latency, never reorder.
    if let Some(last) = pipeline.in_flight.last() {
        ready_at = ready_at.max(last.ready_at);
    }
    pipeline.in_flight.push(Pending { ready_at, verdict });

    // Deliver everything that has matured by this tick; the newest
    // matured verdict wins (cyclic monitoring consumes one verdict per
    // tick, and only the freshest matters).
    let now = pipeline.tick;
    pipeline.tick += 1;
    let matured = pipeline
        .in_flight
        .iter()
        .take_while(|p| p.ready_at <= now)
        .count();
    if matured > 0 {
        pipeline.last_delivered = Some(pipeline.in_flight[matured - 1].verdict);
        pipeline.in_flight.drain(..matured);
    }
    pipeline.last_delivered
}

/// Wraps a detector and delays each verdict by `delay` ticks, with
/// deterministic per-tick jitter of up to `jitter` extra ticks.
///
/// Each call to [`LatencyModel::infer`] advances the wrapped detector
/// immediately (the measurement is consumed on time — it is the *verdict*
/// that is late) and returns the newest verdict whose latency has elapsed.
/// Until the first verdict matures, [`LatencyModel::fill`] is returned
/// (default: [`Classification::Benign`] — an undecided detector must not
/// penalise the process). Between deliveries the model holds the last
/// delivered verdict, matching a detector that reports at a slower cadence
/// than the epoch driver ticks.
///
/// Delivery order is computation order: jitter stretches latency but never
/// lets a newer verdict overtake an older one (`ready_at` is clamped to be
/// non-decreasing), mirroring an in-order inference queue.
///
/// Everything is deterministic: jitter is a pure hash of `(pid, tick)`, so
/// two runs of the same scenario see identical verdict streams.
///
/// # Examples
///
/// ```
/// use valkyrie_detect::{Detector, LatencyModel, ScriptedDetector};
/// use valkyrie_core::{Classification::{self, *}, ProcessId};
/// use valkyrie_hpc::SampleWindow;
///
/// let inner = ScriptedDetector::constant(Malicious);
/// let mut d = LatencyModel::new(inner, 3);
/// let w = SampleWindow::new(4);
/// let pid = ProcessId(1);
/// // The verdict for tick 0 arrives 3 ticks later.
/// assert_eq!(d.infer(pid, &w), Benign);
/// assert_eq!(d.infer(pid, &w), Benign);
/// assert_eq!(d.infer(pid, &w), Benign);
/// assert_eq!(d.infer(pid, &w), Malicious);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel<D> {
    inner: D,
    delay: u64,
    jitter: u64,
    fill: Classification,
    pipelines: HashMap<ProcessId, Pipeline<Classification>>,
    /// Separate pipeline for the confidence path: callers use `infer` *or*
    /// `infer_confidence` per epoch, and each advances only its own clock.
    conf_pipelines: HashMap<ProcessId, Pipeline<f64>>,
    name: String,
}

impl<D: Detector> LatencyModel<D> {
    /// Delays every verdict of `inner` by exactly `delay` ticks.
    pub fn new(inner: D, delay: u64) -> Self {
        Self::with_jitter(inner, delay, 0)
    }

    /// Delays every verdict by `delay` ticks plus a deterministic 0..=
    /// `jitter` extra ticks (a pure hash of the pid and the tick).
    pub fn with_jitter(inner: D, delay: u64, jitter: u64) -> Self {
        let name = format!("{}+latency", inner.name());
        Self {
            inner,
            delay,
            jitter,
            fill: Classification::Benign,
            pipelines: HashMap::new(),
            conf_pipelines: HashMap::new(),
            name,
        }
    }

    /// Overrides the classification reported while no verdict has matured
    /// yet (default [`Classification::Benign`]).
    pub fn fill(mut self, fill: Classification) -> Self {
        self.fill = fill;
        self
    }

    /// The configured base delay, in ticks.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// The configured jitter bound, in ticks.
    pub fn jitter(&self) -> u64 {
        self.jitter
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Verdicts computed but not yet delivered for `pid`.
    pub fn in_flight(&self, pid: ProcessId) -> usize {
        self.pipelines.get(&pid).map_or(0, |p| p.in_flight.len())
    }

    /// The deterministic extra latency for `pid`'s verdict computed at
    /// `tick` (the workspace-wide [`jitter64`] model).
    fn jitter_for(&self, pid: ProcessId, tick: u64) -> u64 {
        jitter64(pid.0, tick, self.jitter)
    }
}

impl<D: Detector> Detector for LatencyModel<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&mut self, pid: ProcessId, window: &SampleWindow) -> Classification {
        // The measurement is consumed now; only the verdict is late.
        let verdict = self.inner.infer(pid, window);
        let extra = self.jitter_for(pid, self.pipelines.get(&pid).map_or(0, |p| p.tick));
        let pipeline = self.pipelines.entry(pid).or_default();
        deliver(pipeline, self.delay, extra, verdict).unwrap_or(self.fill)
    }

    /// The inner detector's confidence, delayed through the same in-order
    /// latency model (same delay, same deterministic per-tick jitter).
    /// Until the first confidence matures, the fill classification's
    /// extreme (`0.0` / `1.0`) is reported.
    fn infer_confidence(&mut self, pid: ProcessId, window: &SampleWindow) -> f64 {
        let confidence = self.inner.infer_confidence(pid, window);
        let extra = self.jitter_for(pid, self.conf_pipelines.get(&pid).map_or(0, |p| p.tick));
        let pipeline = self.conf_pipelines.entry(pid).or_default();
        let fill = match self.fill {
            Classification::Malicious => 1.0,
            Classification::Benign => 0.0,
        };
        deliver(pipeline, self.delay, extra, confidence).unwrap_or(fill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptedDetector;
    use valkyrie_core::Classification::{Benign, Malicious};

    fn drive<D: Detector>(d: &mut D, pid: ProcessId, n: usize) -> Vec<Classification> {
        let w = SampleWindow::new(4);
        (0..n).map(|_| d.infer(pid, &w)).collect()
    }

    #[test]
    fn zero_delay_is_transparent() {
        let mut plain = ScriptedDetector::cycle(vec![Malicious, Benign, Benign]);
        let mut wrapped =
            LatencyModel::new(ScriptedDetector::cycle(vec![Malicious, Benign, Benign]), 0);
        assert_eq!(
            drive(&mut plain, ProcessId(1), 9),
            drive(&mut wrapped, ProcessId(1), 9)
        );
    }

    #[test]
    fn fixed_delay_shifts_the_verdict_stream() {
        let inner = ScriptedDetector::cycle(vec![Malicious, Benign]);
        let mut d = LatencyModel::new(inner, 3);
        let got = drive(&mut d, ProcessId(1), 8);
        // Three warm-up fills, then the scripted stream shifted by 3.
        assert_eq!(
            got,
            vec![Benign, Benign, Benign, Malicious, Benign, Malicious, Benign, Malicious]
        );
    }

    #[test]
    fn fill_value_is_configurable() {
        let inner = ScriptedDetector::constant(Benign);
        let mut d = LatencyModel::new(inner, 2).fill(Malicious);
        let got = drive(&mut d, ProcessId(1), 4);
        assert_eq!(got, vec![Malicious, Malicious, Benign, Benign]);
    }

    #[test]
    fn per_process_pipelines_are_independent() {
        let inner = ScriptedDetector::cycle(vec![Malicious, Benign]);
        let mut d = LatencyModel::new(inner, 1);
        let w = SampleWindow::new(4);
        assert_eq!(d.infer(ProcessId(1), &w), Benign); // warm-up
        assert_eq!(d.infer(ProcessId(2), &w), Benign); // warm-up
        assert_eq!(d.infer(ProcessId(1), &w), Malicious);
        assert_eq!(d.infer(ProcessId(2), &w), Malicious);
        assert_eq!(d.in_flight(ProcessId(1)), 1);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let make =
            || LatencyModel::with_jitter(ScriptedDetector::cycle(vec![Malicious, Benign]), 2, 3);
        let a = drive(&mut make(), ProcessId(7), 40);
        let b = drive(&mut make(), ProcessId(7), 40);
        assert_eq!(a, b, "same config, same stream");
        // Every verdict eventually arrives: after delay+jitter ticks of
        // warm-up, the stream can no longer be stuck on the fill value.
        assert!(a[6..].contains(&Malicious));
    }

    /// Jitter stretches latency but never reorders: the delivered stream
    /// is a prefix-of/lagged view of the computed stream, never a
    /// permutation of it.
    #[test]
    fn delivery_is_in_computation_order() {
        // Inner emits M once, then B forever. If delivery could reorder,
        // the M could surface after a B.
        let inner = ScriptedDetector::then_hold(vec![Malicious, Benign]);
        let mut d = LatencyModel::with_jitter(inner, 1, 4);
        let got = drive(&mut d, ProcessId(3), 30);
        // The model may *hold* the M across ticks with no matured verdict,
        // but once a newer B is delivered the stale M can never resurface.
        let first_m = got.iter().position(|&c| c == Malicious).unwrap();
        let first_b_after = first_m
            + got[first_m..]
                .iter()
                .position(|&c| c == Benign)
                .expect("the newer Benign verdicts must eventually deliver");
        assert!(
            got[first_b_after..].iter().all(|&c| c == Benign),
            "a stale Malicious surfaced after a newer Benign: {got:?}"
        );
    }

    #[test]
    fn name_reflects_the_wrapping() {
        let d = LatencyModel::new(ScriptedDetector::constant(Benign), 1);
        assert_eq!(d.name(), "scripted+latency");
    }
}
