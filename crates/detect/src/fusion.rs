//! Weighted-evidence fusion over heterogeneous detector ensembles.
//!
//! [`EnsembleDetector`](crate::EnsembleDetector) folds member votes into a
//! single bit per epoch; every member runs every epoch and carries the same
//! weight. The [`FusionEngine`] generalises that along three axes the
//! paper's ensemble discussion (Section VII) leaves open:
//!
//! * **confidence** — members emit [`Detector::infer_confidence`] scores in
//!   `[0, 1]` instead of one bit, so a barely-over-threshold vote weighs
//!   less than a saturated one;
//! * **cadence** — each member publishes every `cadence` epochs (a slow
//!   heavyweight model next to a fast cheap screen), and between
//!   publications its last confidence is *decayed* by
//!   [`valkyrie_core::stale_weight`] rather than dropped;
//! * **weight** — members carry configurable fusion weights, with
//!   per-member `N*` (measurement-count) accounting so callers can tell
//!   which members have reached their efficacy target.
//!
//! The legacy [`CombinationRule`] is a degenerate configuration: unit
//! weights, cadence 1, binary confidences — [`FusionEngine::from_rule`]
//! builds exactly that, and the majority variant is property-pinned
//! bit-for-bit against `EnsembleDetector` in the test suite.
//!
//! # Examples
//!
//! ```
//! use valkyrie_detect::{Detector, FusionEngine, FusionMember, ScriptedDetector};
//! use valkyrie_core::{Classification, ProcessId};
//! use valkyrie_hpc::SampleWindow;
//!
//! // A fast weak screen fused with a slow strong confirmer.
//! let mut fusion = FusionEngine::new(
//!     "fast+slow",
//!     vec![
//!         FusionMember::new(Box::new(ScriptedDetector::constant(Classification::Malicious))),
//!         FusionMember::new(Box::new(ScriptedDetector::constant(Classification::Benign)))
//!             .weight(3.0)
//!             .cadence(2),
//!     ],
//!     0.5,
//! );
//! let w = SampleWindow::new(4);
//! // The heavyweight benign member dominates the mass.
//! assert_eq!(fusion.infer(ProcessId(1), &w), Classification::Benign);
//! ```

use crate::{CombinationRule, Detector};
use std::collections::HashMap;
use std::fmt;
use valkyrie_core::{
    stale_weight, Classification, EscalationLadder, EscalationLevel, Evidence, ProcessId, Verdict,
};
use valkyrie_hpc::SampleWindow;

/// One member of a [`FusionEngine`]: a detector plus its fusion policy.
pub struct FusionMember {
    detector: Box<dyn Detector>,
    weight: f64,
    cadence: u32,
    n_star: u64,
}

impl FusionMember {
    /// Wraps a detector with unit weight, cadence 1 and `N* = 1`.
    pub fn new(detector: Box<dyn Detector>) -> Self {
        Self {
            detector,
            weight: 1.0,
            cadence: 1,
            n_star: 1,
        }
    }

    /// Sets the member's fusion weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "fusion weight must be finite and positive, got {weight}"
        );
        self.weight = weight;
        self
    }

    /// Sets the member's publication cadence: it runs on epochs where
    /// `(epoch - 1) % cadence == 0`, so every member publishes on epoch 1.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn cadence(mut self, cadence: u32) -> Self {
        assert!(cadence > 0, "fusion cadence must be at least 1");
        self.cadence = cadence;
        self
    }

    /// Sets the member's `N*`: the number of measurements it needs before
    /// its evidence is considered efficacious (see
    /// [`FusionEngine::saturated`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_star` is zero.
    pub fn n_star(mut self, n_star: u64) -> Self {
        assert!(n_star > 0, "fusion n_star must be at least 1");
        self.n_star = n_star;
        self
    }
}

impl fmt::Debug for FusionMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FusionMember")
            .field("detector", &self.detector.name())
            .field("weight", &self.weight)
            .field("cadence", &self.cadence)
            .field("n_star", &self.n_star)
            .finish()
    }
}

/// Per-process, per-member fusion state.
#[derive(Debug, Clone, Copy)]
struct MemberState {
    /// Last confidence the member published for this process.
    last_confidence: f64,
    /// Epoch of that publication.
    last_epoch: u64,
    /// Measurements (publications) the member has made for this process.
    measurements: u64,
}

#[derive(Debug, Clone, Default)]
struct PidState {
    /// Epochs this process has been fused (first call → epoch 1).
    epoch: u64,
    /// One slot per member; `None` until the member first publishes.
    members: Vec<Option<MemberState>>,
}

/// Fuses per-member evidence streams into one weighted mass per epoch.
///
/// Each epoch the engine runs the members whose cadence is due, records
/// their confidences, and folds all remembered confidences into an
/// [`Evidence`] mass with effective weight
/// `weight × stale_weight(decay, age, cadence)` — a member that stops
/// publishing decays out of the mass instead of pinning it.
///
/// As a [`Detector`], `infer` compares the mass against the fusion
/// threshold and `infer_confidence` returns the mass itself. The
/// [`FusionEngine::verdicts`] path instead *emits* the due members'
/// [`Verdict`]s for the engine-side fusion tier, letting each member
/// publish over its own ingest queue at its own cadence.
pub struct FusionEngine {
    name: String,
    members: Vec<FusionMember>,
    threshold: f64,
    stale_decay: f64,
    state: HashMap<ProcessId, PidState>,
}

impl FusionEngine {
    /// Builds a fusion engine over owned members.
    ///
    /// `threshold` is the mass above which (strictly) the fused inference
    /// is malicious.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `threshold` is not finite.
    pub fn new(name: impl Into<String>, members: Vec<FusionMember>, threshold: f64) -> Self {
        assert!(!members.is_empty(), "fusion needs at least one member");
        assert!(threshold.is_finite(), "fusion threshold must be finite");
        Self {
            name: name.into(),
            members,
            threshold,
            stale_decay: 1.0,
            state: HashMap::new(),
        }
    }

    /// Builds the degenerate unit-weight configuration equivalent to an
    /// [`EnsembleDetector`](crate::EnsembleDetector) with `rule`: every
    /// detector gets weight 1, cadence 1 and the rule becomes a mass
    /// threshold. With binary member confidences the decisions match
    /// [`CombinationRule::decide`] bit-for-bit.
    pub fn from_rule(
        name: impl Into<String>,
        detectors: Vec<Box<dyn Detector>>,
        rule: CombinationRule,
    ) -> Self {
        assert!(!detectors.is_empty(), "fusion needs at least one member");
        let total = detectors.len() as f64;
        // mass = malicious / total; pick thresholds so `mass > threshold`
        // reproduces each rule's integer comparison exactly.
        let threshold = match rule {
            // malicious >= 1  ⇔  mass > 0
            CombinationRule::Any => 0.0,
            // malicious == total  ⇔  mass > (total - 0.5) / total
            CombinationRule::All => (total - 0.5) / total,
            // 2·malicious > total  ⇔  mass > 0.5
            CombinationRule::Majority => 0.5,
            // malicious >= k  ⇔  mass > (k - 0.5) / total
            // (k = 0 gives a negative threshold: always malicious, like
            // the legacy rule's `malicious >= 0`.)
            CombinationRule::AtLeast(k) => (k as f64 - 0.5) / total,
        };
        let members = detectors.into_iter().map(FusionMember::new).collect();
        Self::new(name, members, threshold)
    }

    /// Sets the staleness decay applied per epoch past a member's cadence
    /// (see [`stale_weight`]). `1.0` (the default) never decays; `0.0`
    /// drops a member's evidence the epoch after its cadence lapses.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not in `[0, 1]`.
    pub fn stale_decay(mut self, decay: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&decay),
            "stale decay must be in [0, 1], got {decay}"
        );
        self.stale_decay = decay;
        self
    }

    /// Number of member detectors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false: the constructor rejects empty member lists.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The fusion threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Per-member measurement counts for `pid` (the `N*` accounting):
    /// `counts[i]` is how many times member `i` has published for this
    /// process. Empty if the process has never been fused.
    pub fn measurements(&self, pid: ProcessId) -> Vec<u64> {
        self.state
            .get(&pid)
            .map(|s| {
                s.members
                    .iter()
                    .map(|m| m.map_or(0, |m| m.measurements))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True once *every* member has published at least its `N*`
    /// measurements for `pid` — the fused verdict has reached each
    /// member's efficacy target.
    pub fn saturated(&self, pid: ProcessId) -> bool {
        self.state.get(&pid).is_some_and(|s| {
            self.members
                .iter()
                .zip(&s.members)
                .all(|(member, st)| st.is_some_and(|st| st.measurements >= member.n_star))
        })
    }

    /// Drops all fusion state for `pid` (e.g. after process exit).
    pub fn forget(&mut self, pid: ProcessId) {
        self.state.remove(&pid);
    }

    /// Advances `pid` by one epoch: runs the due members, records their
    /// confidences, returns the per-member publications as
    /// `(member_index, confidence)` pairs appended to `out`.
    fn step_into(
        members: &mut [FusionMember],
        state: &mut HashMap<ProcessId, PidState>,
        pid: ProcessId,
        window: &SampleWindow,
        out: &mut Vec<(usize, f64)>,
    ) {
        let st = state.entry(pid).or_default();
        st.members.resize(members.len(), None);
        st.epoch += 1;
        let epoch = st.epoch;
        for (idx, member) in members.iter_mut().enumerate() {
            if !(epoch - 1).is_multiple_of(u64::from(member.cadence)) {
                continue;
            }
            let confidence = member.detector.infer_confidence(pid, window);
            let slot = &mut st.members[idx];
            let measurements = slot.map_or(0, |m| m.measurements) + 1;
            *slot = Some(MemberState {
                last_confidence: confidence,
                last_epoch: epoch,
                measurements,
            });
            out.push((idx, confidence));
        }
    }

    /// The fused evidence mass for `pid` at its current epoch, folding
    /// every remembered member confidence with its staleness-decayed
    /// weight. `0.0` for a process with no evidence.
    pub fn mass(&self, pid: ProcessId) -> f64 {
        let Some(st) = self.state.get(&pid) else {
            return 0.0;
        };
        let mut evidence = Evidence::new();
        for (member, slot) in self.members.iter().zip(&st.members) {
            let Some(m) = slot else { continue };
            let age = st.epoch - m.last_epoch;
            let w = member.weight * stale_weight(self.stale_decay, age, member.cadence);
            evidence.add(m.last_confidence, w);
        }
        evidence.mass()
    }

    /// The signed distance between a ladder-rung boundary and `pid`'s
    /// current fused mass: how much more evidence the ensemble would need
    /// before `level` engages (negative when the rung is already engaged).
    ///
    /// This is the detect-side boundary query of the adaptive tier — the
    /// defender's view of the same edge a mass-riding attacker targets with
    /// [`EscalationLadder::ride_below`]. Rungs without an upper boundary
    /// measure against the compensation edge, mirroring `ride_below`.
    ///
    /// # Examples
    ///
    /// ```
    /// use valkyrie_core::{Classification, EscalationLadder, EscalationLevel, ProcessId};
    /// use valkyrie_detect::{FusionEngine, FusionMember, ScriptedDetector};
    /// let engine = FusionEngine::new(
    ///     "solo",
    ///     vec![FusionMember::new(Box::new(ScriptedDetector::constant(Classification::Benign)))],
    ///     0.5,
    /// );
    /// let ladder = EscalationLadder::graduated();
    /// // No evidence yet: the full throttle boundary remains.
    /// let headroom = engine.ladder_headroom(ProcessId(1), ladder, EscalationLevel::Throttle);
    /// assert_eq!(headroom, 0.6);
    /// ```
    pub fn ladder_headroom(
        &self,
        pid: ProcessId,
        ladder: EscalationLadder,
        level: EscalationLevel,
    ) -> f64 {
        ladder.ride_below(level, 0.0) - self.mass(pid)
    }

    /// Advances one epoch and emits a [`Verdict`] per member that
    /// published this epoch, appended to `out`. The verdict's detector id
    /// is the member's index and its cadence the member's cadence — ready
    /// to publish over a per-member ingest queue into the engine-side
    /// fusion tier.
    ///
    /// Returns the number of verdicts emitted.
    pub fn verdicts(
        &mut self,
        pid: ProcessId,
        window: &SampleWindow,
        out: &mut Vec<Verdict>,
    ) -> usize {
        let mut published = Vec::new();
        Self::step_into(
            &mut self.members,
            &mut self.state,
            pid,
            window,
            &mut published,
        );
        let n = published.len();
        out.extend(published.into_iter().map(|(idx, confidence)| {
            Verdict::new(idx as u32, confidence).with_cadence(self.members[idx].cadence)
        }));
        n
    }

    /// Advances one epoch and returns the fused mass (the confidence path
    /// [`Detector::infer_confidence`] takes).
    pub fn fuse(&mut self, pid: ProcessId, window: &SampleWindow) -> f64 {
        let mut published = Vec::new();
        Self::step_into(
            &mut self.members,
            &mut self.state,
            pid,
            window,
            &mut published,
        );
        self.mass(pid)
    }
}

impl fmt::Debug for FusionEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FusionEngine")
            .field("name", &self.name)
            .field("members", &self.members)
            .field("threshold", &self.threshold)
            .field("stale_decay", &self.stale_decay)
            .finish()
    }
}

impl Detector for FusionEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn infer(&mut self, pid: ProcessId, window: &SampleWindow) -> Classification {
        if self.fuse(pid, window) > self.threshold {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }

    fn infer_confidence(&mut self, pid: ProcessId, window: &SampleWindow) -> f64 {
        self.fuse(pid, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnsembleDetector, ScriptedDetector};

    fn constant(c: Classification) -> Box<dyn Detector> {
        Box::new(ScriptedDetector::constant(c))
    }

    fn window() -> SampleWindow {
        SampleWindow::new(4)
    }

    #[test]
    fn ladder_headroom_tracks_the_fused_mass() {
        let mut fusion = FusionEngine::new(
            "one",
            vec![FusionMember::new(constant(Classification::Malicious))],
            0.5,
        );
        let ladder = EscalationLadder::graduated();
        let pid = ProcessId(7);
        // No evidence: the whole boundary remains.
        assert_eq!(
            fusion.ladder_headroom(pid, ladder, EscalationLevel::Throttle),
            0.6
        );
        // A saturated malicious member spends all the headroom and more.
        let w = window();
        fusion.fuse(pid, &w);
        let after = fusion.ladder_headroom(pid, ladder, EscalationLevel::Throttle);
        assert!(after < 0.0, "rung should be engaged, headroom {after}");
        // The kill rung sits higher, so its headroom is exactly the rung gap
        // above the throttle headroom.
        let kill = fusion.ladder_headroom(pid, ladder, EscalationLevel::Kill);
        assert!((kill - after - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_rule_matches_legacy_decision_for_every_rule() {
        let w = window();
        let rules = [
            CombinationRule::Any,
            CombinationRule::All,
            CombinationRule::Majority,
            CombinationRule::AtLeast(0),
            CombinationRule::AtLeast(2),
            CombinationRule::AtLeast(5),
        ];
        for total in 1..=5usize {
            for malicious in 0..=total {
                for rule in rules {
                    let detectors: Vec<Box<dyn Detector>> = (0..total)
                        .map(|i| {
                            constant(if i < malicious {
                                Classification::Malicious
                            } else {
                                Classification::Benign
                            })
                        })
                        .collect();
                    let mut fusion = FusionEngine::from_rule("f", detectors, rule);
                    assert_eq!(
                        fusion.infer(ProcessId(1), &w),
                        rule.decide(malicious, total),
                        "rule {rule:?} with {malicious}/{total} votes"
                    );
                }
            }
        }
    }

    #[test]
    fn unit_weight_majority_tracks_ensemble_over_time() {
        let w = window();
        let scripts = |_: usize| {
            vec![
                Classification::Malicious,
                Classification::Benign,
                Classification::Malicious,
                Classification::Malicious,
                Classification::Benign,
            ]
        };
        let members = |n: usize| -> Vec<Box<dyn Detector>> {
            (0..n)
                .map(|i| {
                    let mut seq = scripts(i);
                    let shift = i % seq.len();
                    seq.rotate_left(shift);
                    Box::new(ScriptedDetector::cycle(seq)) as Box<dyn Detector>
                })
                .collect()
        };
        for n in [1usize, 3, 5] {
            let mut legacy = EnsembleDetector::new("e", members(n), CombinationRule::Majority);
            let mut fusion = FusionEngine::from_rule("f", members(n), CombinationRule::Majority);
            for epoch in 0..10 {
                let pid = ProcessId(7);
                assert_eq!(
                    fusion.infer(pid, &w),
                    legacy.infer(pid, &w),
                    "size {n} epoch {epoch}"
                );
            }
        }
    }

    #[test]
    fn weights_tilt_the_fused_mass() {
        let w = window();
        let mut fusion = FusionEngine::new(
            "tilted",
            vec![
                FusionMember::new(constant(Classification::Malicious)),
                FusionMember::new(constant(Classification::Benign)).weight(4.0),
            ],
            0.5,
        );
        // Mass = 1·1 / (1 + 4) = 0.2 → benign despite the malicious vote.
        assert_eq!(fusion.infer(ProcessId(1), &w), Classification::Benign);
        assert!((fusion.mass(ProcessId(1)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn slow_member_holds_then_decays() {
        let w = window();
        // Slow strong malicious member (cadence 3, weight 3) against a fast
        // benign screen. With no decay its held confidence keeps the mass
        // at 0.75 between publications.
        let mut fusion = FusionEngine::new(
            "held",
            vec![
                FusionMember::new(constant(Classification::Benign)),
                FusionMember::new(constant(Classification::Malicious))
                    .weight(3.0)
                    .cadence(3),
            ],
            0.5,
        );
        let pid = ProcessId(9);
        for _ in 0..5 {
            assert_eq!(fusion.infer(pid, &w), Classification::Malicious);
        }

        // With decay 0.0 the held confidence vanishes the epoch after the
        // cadence lapses: epochs 1..=3 are within cadence (age < 3), epoch
        // 4 republished, so probe epochs 5 and 6 (ages 1, 2) stay held and
        // epoch 7 republishes again — use cadence 4 to see the drop.
        let mut fusion = FusionEngine::new(
            "decayed",
            vec![
                FusionMember::new(constant(Classification::Benign)),
                FusionMember::new(constant(Classification::Malicious))
                    .weight(3.0)
                    .cadence(4),
            ],
            0.5,
        )
        .stale_decay(0.0);
        let pid = ProcessId(10);
        // Epoch 1: both publish → mass 0.75.
        assert_eq!(fusion.infer(pid, &w), Classification::Malicious);
        // Epochs 2–4: ages 1–3 ≤ cadence 4 → still held.
        for _ in 0..3 {
            assert_eq!(fusion.infer(pid, &w), Classification::Malicious);
        }
        // Epoch 5 republishes (cadence 4: epochs 1, 5, 9, …) → held.
        assert_eq!(fusion.infer(pid, &w), Classification::Malicious);
        // Force the member silent by replacing it would need mutation;
        // instead check stale_weight drops a *past-cadence* age directly.
        assert_eq!(stale_weight(0.0, 5, 4), 0.0);
        assert_eq!(stale_weight(0.0, 4, 4), 1.0);
    }

    #[test]
    fn verdicts_emit_per_member_cadence() {
        let w = window();
        let mut fusion = FusionEngine::new(
            "emit",
            vec![
                FusionMember::new(constant(Classification::Malicious)),
                FusionMember::new(constant(Classification::Benign)).cadence(3),
            ],
            0.5,
        );
        let pid = ProcessId(3);
        let mut out = Vec::new();
        // Epoch 1: both due.
        assert_eq!(fusion.verdicts(pid, &w, &mut out), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].detector, 0);
        assert_eq!(out[0].confidence, 1.0);
        assert_eq!(out[1].detector, 1);
        assert_eq!(out[1].confidence, 0.0);
        assert_eq!(out[1].cadence, 3);
        // Epochs 2, 3: only the fast member.
        out.clear();
        assert_eq!(fusion.verdicts(pid, &w, &mut out), 1);
        assert_eq!(fusion.verdicts(pid, &w, &mut out), 1);
        // Epoch 4: slow member due again.
        out.clear();
        assert_eq!(fusion.verdicts(pid, &w, &mut out), 2);
        // N* accounting: fast member published 4×, slow member 2×.
        assert_eq!(fusion.measurements(pid), vec![4, 2]);
        assert!(fusion.saturated(pid));
    }

    #[test]
    fn n_star_accounting_gates_saturation() {
        let w = window();
        let mut fusion = FusionEngine::new(
            "nstar",
            vec![
                FusionMember::new(constant(Classification::Malicious)).n_star(1),
                FusionMember::new(constant(Classification::Malicious))
                    .cadence(2)
                    .n_star(3),
            ],
            0.5,
        );
        let pid = ProcessId(5);
        // Slow member publishes on epochs 1, 3, 5 → needs 5 epochs for 3
        // measurements.
        for epoch in 1..=4u64 {
            fusion.fuse(pid, &w);
            assert!(!fusion.saturated(pid), "epoch {epoch}");
        }
        fusion.fuse(pid, &w);
        assert!(fusion.saturated(pid));
        assert_eq!(fusion.measurements(pid), vec![5, 3]);

        fusion.forget(pid);
        assert!(fusion.measurements(pid).is_empty());
        assert!(!fusion.saturated(pid));
    }
}
