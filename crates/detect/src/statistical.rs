//! A z-score threshold detector over HPC samples.
//!
//! Fit a per-event mean/standard-deviation baseline from benign traces;
//! classify an epoch as malicious when the average of the largest per-event
//! z-scores of its latest measurement exceeds a threshold. This is the
//! "simple statistical detector" of the paper's case studies — effective at
//! spotting the wild counter profiles of cache attacks, rowhammer and
//! cryptominers, but false-positive prone on bursty benign programs.

use crate::Detector;
use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::{HpcSample, SampleWindow, EVENT_COUNT};

/// The z-score detector.
///
/// # Examples
///
/// ```
/// use valkyrie_detect::{Detector, StatisticalDetector};
/// use valkyrie_core::{Classification, ProcessId};
/// use valkyrie_hpc::{HpcSample, SampleWindow, Signature};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let benign: Vec<HpcSample> =
///     (0..200).map(|_| Signature::cpu_bound().sample(&mut rng, 1.0)).collect();
/// let mut det = StatisticalDetector::fit(&benign, 4.0);
///
/// let mut w = SampleWindow::new(8);
/// w.push(Signature::llc_thrashing().sample(&mut rng, 1.0));
/// assert_eq!(det.infer(ProcessId(1), &w), Classification::Malicious);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StatisticalDetector {
    mean: [f64; EVENT_COUNT],
    std: [f64; EVENT_COUNT],
    threshold: f64,
    normalized: bool,
}

impl StatisticalDetector {
    /// Number of top per-event z-scores averaged into the anomaly score.
    const TOP_K: usize = 3;

    /// Fits the benign baseline and sets the anomaly threshold (in σ).
    ///
    /// # Panics
    ///
    /// Panics if `benign` is empty or `threshold` is not positive.
    pub fn fit(benign: &[HpcSample], threshold: f64) -> Self {
        Self::fit_inner(benign, threshold, false)
    }

    /// Like [`StatisticalDetector::fit`] but z-scores are computed on
    /// *per-cycle rates* (`event / cycles`) instead of raw counts.
    ///
    /// Rate features are invariant to CPU-time throttling: a benign process
    /// that Valkyrie slows down keeps its per-cycle profile, so throttling
    /// cannot snowball into further false positives — exactly how deployed
    /// HPC detectors normalise their features.
    ///
    /// # Panics
    ///
    /// Panics if `benign` is empty or `threshold` is not positive.
    pub fn fit_normalized(benign: &[HpcSample], threshold: f64) -> Self {
        Self::fit_inner(benign, threshold, true)
    }

    fn fit_inner(benign: &[HpcSample], threshold: f64, normalized: bool) -> Self {
        assert!(!benign.is_empty(), "baseline needs benign samples");
        assert!(threshold > 0.0, "threshold must be positive");
        let feats: Vec<[f64; EVENT_COUNT]> = benign
            .iter()
            .map(|s| Self::featurize(s, normalized))
            .collect();
        let n = feats.len() as f64;
        let mut mean = [0.0; EVENT_COUNT];
        for f in &feats {
            for (m, v) in mean.iter_mut().zip(f) {
                *m += v / n;
            }
        }
        let mut var = [0.0; EVENT_COUNT];
        for f in &feats {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(f) {
                let d = x - m;
                *v += d * d / n;
            }
        }
        let mut std = [0.0; EVENT_COUNT];
        for ((s, v), m) in std.iter_mut().zip(&var).zip(&mean) {
            // Relative per-feature floor so near-constant features don't
            // divide by ~0 while small-magnitude rates keep their signal.
            *s = v.sqrt().max(1e-4 * m.abs() + 1e-12);
        }
        Self {
            mean,
            std,
            threshold,
            normalized,
        }
    }

    fn featurize(sample: &HpcSample, normalized: bool) -> [f64; EVENT_COUNT] {
        let mut f = *sample.as_features();
        if normalized {
            let cycles = sample.get(valkyrie_hpc::HpcEvent::Cycles).max(1.0);
            for v in f.iter_mut() {
                *v /= cycles;
            }
        }
        f
    }

    /// The anomaly threshold in σ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Returns a copy with a scaled threshold (platform noise knob: noisier
    /// platforms use a *lower* effective threshold).
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        self.threshold = threshold;
        self
    }

    /// Anomaly score of one sample: mean of the top-3 per-event |z|.
    pub fn score(&self, sample: &HpcSample) -> f64 {
        let feats = Self::featurize(sample, self.normalized);
        // Three-register top-3 selection: no allocation, no sort. The fold
        // `(a + b) + c` over the descending top three matches the previous
        // sorted `take(3).sum()` bit-for-bit because `0.0 + x == x` for the
        // non-negative |z| values.
        let (mut a, mut b, mut c) = (0.0_f64, 0.0_f64, 0.0_f64);
        for ((x, m), s) in feats.iter().zip(&self.mean).zip(&self.std) {
            let z = ((x - m) / s).abs();
            if z > a {
                (a, b, c) = (z, a, b);
            } else if z > b {
                (b, c) = (z, b);
            } else if z > c {
                c = z;
            }
        }
        (a + b + c) / Self::TOP_K as f64
    }
}

impl Detector for StatisticalDetector {
    fn name(&self) -> &str {
        "statistical-zscore"
    }

    fn infer(&mut self, _pid: ProcessId, window: &SampleWindow) -> Classification {
        match window.latest() {
            Some(sample) if self.score(sample) > self.threshold => Classification::Malicious,
            _ => Classification::Benign,
        }
    }

    /// Confidence = the anomaly margin `s / (s + threshold)`: `0.5` exactly
    /// at the decision boundary, approaching `1.0` as the score dwarfs the
    /// threshold. `0.0` when the window is empty.
    fn infer_confidence(&mut self, _pid: ProcessId, window: &SampleWindow) -> f64 {
        match window.latest() {
            Some(sample) => {
                let s = self.score(sample);
                s / (s + self.threshold)
            }
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use valkyrie_hpc::Signature;

    fn baseline(rng: &mut StdRng) -> Vec<HpcSample> {
        let families = [
            Signature::cpu_bound(),
            Signature::memory_bound(),
            Signature::graphics_bound(),
        ];
        let mut out = Vec::new();
        for _ in 0..300 {
            for f in &families {
                out.push(f.sample(rng, 1.0));
            }
        }
        out
    }

    #[test]
    fn attacks_score_far_above_benign() {
        let mut rng = StdRng::seed_from_u64(5);
        let det = StatisticalDetector::fit(&baseline(&mut rng), 4.0);
        let benign_score = det.score(&Signature::cpu_bound().sample(&mut rng, 1.0));
        let spy_score = det.score(&Signature::llc_thrashing().sample(&mut rng, 1.0));
        let hammer_score = det.score(&Signature::hammering().sample(&mut rng, 1.0));
        assert!(
            spy_score > 3.0 * benign_score,
            "spy {spy_score} vs {benign_score}"
        );
        assert!(hammer_score > 3.0 * benign_score);
    }

    #[test]
    fn detects_attacks_with_high_tpr() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut det = StatisticalDetector::fit(&baseline(&mut rng), 4.0);
        let mut hits = 0;
        for _ in 0..100 {
            let mut w = SampleWindow::new(2);
            w.push(Signature::hammering().sample(&mut rng, 1.0));
            if det.infer(ProcessId(1), &w) == Classification::Malicious {
                hits += 1;
            }
        }
        assert!(hits > 90, "TPR too low: {hits}/100");
    }

    #[test]
    fn benign_fp_rate_is_low_but_nonzero_for_bursty_programs() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut det = StatisticalDetector::fit(&baseline(&mut rng), 4.0);
        // Clean benign: essentially no FPs.
        let mut fps = 0;
        for _ in 0..300 {
            let mut w = SampleWindow::new(2);
            w.push(Signature::cpu_bound().sample(&mut rng, 1.0));
            if det.infer(ProcessId(1), &w) == Classification::Malicious {
                fps += 1;
            }
        }
        assert!(fps < 15, "clean benign FPs: {fps}/300");
        // Bursty benign (3x spikes) does trip the detector sometimes.
        let bursty = Signature::cpu_bound().scaled(3.0);
        let mut bursty_fps = 0;
        for _ in 0..300 {
            let mut w = SampleWindow::new(2);
            w.push(bursty.sample(&mut rng, 1.0));
            if det.infer(ProcessId(1), &w) == Classification::Malicious {
                bursty_fps += 1;
            }
        }
        assert!(bursty_fps > fps, "bursty programs should trip more often");
    }

    #[test]
    fn empty_window_is_benign() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut det = StatisticalDetector::fit(&baseline(&mut rng), 4.0);
        let w = SampleWindow::new(2);
        assert_eq!(det.infer(ProcessId(1), &w), Classification::Benign);
    }

    #[test]
    fn threshold_knob_shifts_sensitivity() {
        let mut rng = StdRng::seed_from_u64(9);
        let det = StatisticalDetector::fit(&baseline(&mut rng), 4.0);
        let strict = det.clone().with_threshold(100.0);
        let sample = Signature::llc_thrashing().sample(&mut rng, 1.0);
        assert!(det.score(&sample) > det.threshold());
        assert!(strict.score(&sample) < strict.threshold());
    }

    #[test]
    #[should_panic(expected = "benign samples")]
    fn empty_baseline_panics() {
        let _ = StatisticalDetector::fit(&[], 4.0);
    }

    #[test]
    fn normalized_scores_are_invariant_to_throttling() {
        // A benign program throttled to 5% CPU keeps its per-cycle profile,
        // so the normalized detector's score barely moves — no FP snowball.
        let mut rng = StdRng::seed_from_u64(10);
        let det = StatisticalDetector::fit_normalized(&baseline(&mut rng), 4.0);
        let sig = Signature::cpu_bound();
        let mut full = 0.0;
        let mut throttled = 0.0;
        let n = 200;
        for _ in 0..n {
            full += det.score(&sig.sample(&mut rng, 1.0));
            throttled += det.score(&sig.sample(&mut rng, 0.05));
        }
        let (full, throttled) = (full / n as f64, throttled / n as f64);
        assert!(
            (throttled - full).abs() < 0.5 * full + 0.5,
            "full {full} vs throttled {throttled}"
        );
    }

    #[test]
    fn normalized_detector_still_flags_attacks_when_throttled() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut det = StatisticalDetector::fit_normalized(&baseline(&mut rng), 4.0);
        let mut hits = 0;
        for _ in 0..100 {
            let mut w = SampleWindow::new(2);
            w.push(Signature::llc_thrashing().sample(&mut rng, 0.02));
            if det.infer(ProcessId(1), &w) == Classification::Malicious {
                hits += 1;
            }
        }
        assert!(hits > 90, "throttled spy detection {hits}/100");
    }
}
