//! Generative HPC signatures for workload classes.
//!
//! A [`Signature`] is a per-event log-normal-ish generator (mean + relative
//! jitter) describing what one *full epoch at 100 % CPU* of a workload looks
//! like through the performance counters. Workloads scale the drawn sample by
//! the CPU fraction they actually received, which is exactly how real `perf`
//! counts shrink when a process is throttled.

use crate::events::{HpcEvent, EVENT_COUNT};
use crate::sample::HpcSample;
use rand::Rng;

/// Generative model of a workload's per-epoch HPC behaviour.
///
/// # Examples
///
/// ```
/// use valkyrie_hpc::Signature;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = Signature::llc_thrashing().sample(&mut rng, 0.5);
/// assert!(s.is_valid());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    mean: [f64; EVENT_COUNT],
    /// Relative jitter (coefficient of variation) per event.
    jitter: [f64; EVENT_COUNT],
}

impl Signature {
    /// Builds a signature from per-event means and a uniform relative jitter.
    pub fn new(mean: [f64; EVENT_COUNT], jitter: f64) -> Self {
        Self {
            mean,
            jitter: [jitter.max(0.0); EVENT_COUNT],
        }
    }

    /// Builds a signature with per-event jitter.
    pub fn with_jitter(mean: [f64; EVENT_COUNT], jitter: [f64; EVENT_COUNT]) -> Self {
        Self { mean, jitter }
    }

    /// Per-event mean counts for a full epoch.
    pub fn mean(&self) -> &[f64; EVENT_COUNT] {
        &self.mean
    }

    /// Returns a copy with one event's mean replaced.
    pub fn with_event(mut self, ev: HpcEvent, mean: f64) -> Self {
        self.mean[ev.index()] = mean;
        self
    }

    /// Returns a copy with every mean scaled by `k`.
    pub fn scaled(mut self, k: f64) -> Self {
        for m in &mut self.mean {
            *m *= k;
        }
        self
    }

    /// Draws one epoch sample, scaled by the CPU fraction `cpu_share` the
    /// process actually received during the epoch.
    ///
    /// Counts are clamped to be non-negative; jitter is applied
    /// multiplicatively around the mean.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, cpu_share: f64) -> HpcSample {
        let share = cpu_share.clamp(0.0, 1.0);
        let mut counts = [0.0; EVENT_COUNT];
        for ((count, &jitter), &mean) in counts.iter_mut().zip(&self.jitter).zip(&self.mean) {
            let noise: f64 = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            *count = (mean * noise.max(0.0) * share).max(0.0);
        }
        HpcSample::from_counts(counts)
    }

    // ----- canned class signatures -------------------------------------------------

    /// Integer/FP compute-bound benign program (SPECint-like).
    pub fn cpu_bound() -> Self {
        Self::from_profile(3.0e8, 0.004, 0.002, 0.02, 0.45, 0.01, 0.001, 0.25, 0.08)
    }

    /// Memory-bandwidth-bound benign program (STREAM-like).
    pub fn memory_bound() -> Self {
        Self::from_profile(1.2e8, 0.08, 0.004, 0.06, 0.75, 0.002, 0.01, 0.33, 0.04)
    }

    /// Graphics/visualisation benign program (SPECViewperf-like).
    pub fn graphics_bound() -> Self {
        Self::from_profile(2.0e8, 0.02, 0.012, 0.03, 0.55, 0.006, 0.004, 0.28, 0.12)
    }

    /// Cache-attack spy: extremely high L1/LLC miss ratios, few stores.
    pub fn llc_thrashing() -> Self {
        Self::from_profile(1.5e8, 0.22, 0.003, 0.18, 0.95, 0.001, 0.002, 0.05, 0.01)
    }

    /// Rowhammer loop: flush+load pairs, near-100 % LLC misses, heavy dTLB.
    pub fn hammering() -> Self {
        Self::from_profile(0.9e8, 0.30, 0.002, 0.30, 0.99, 0.001, 0.05, 0.08, 0.01)
    }

    /// Ransomware: crypto compute + bursty file I/O (stores + page faults).
    pub fn ransomware() -> Self {
        Self::from_profile(2.6e8, 0.02, 0.003, 0.05, 0.60, 0.004, 0.003, 0.42, 0.90)
    }

    /// Cryptominer: long arithmetic bursts, almost no memory traffic — few
    /// stores, few branch misses, near-zero faults per cycle.
    pub fn cryptominer() -> Self {
        Self::from_profile(
            6.0e8, 0.001, 0.001, 0.004, 0.30, 0.0002, 0.0005, 0.02, 0.005,
        )
    }

    /// Builds a signature from ratios relative to the instruction count.
    ///
    /// `instr` is instructions per full epoch; the remaining arguments are
    /// rates per instruction (misses, refs, ...), except `page_fault_rate`
    /// which is per 10^6 instructions.
    #[allow(clippy::too_many_arguments)]
    pub fn from_profile(
        instr: f64,
        l1d_miss_rate: f64,
        l1i_miss_rate: f64,
        llc_miss_rate_of_refs: f64,
        llc_ref_rate_permille: f64,
        branch_miss_rate: f64,
        dtlb_miss_rate: f64,
        store_rate: f64,
        page_fault_rate: f64,
    ) -> Self {
        let llc_refs = instr * llc_ref_rate_permille / 1000.0;
        let mut mean = [0.0; EVENT_COUNT];
        mean[HpcEvent::Instructions.index()] = instr;
        mean[HpcEvent::Cycles.index()] = instr * 1.25;
        mean[HpcEvent::L1dMisses.index()] = instr * l1d_miss_rate;
        mean[HpcEvent::L1iMisses.index()] = instr * l1i_miss_rate;
        mean[HpcEvent::LlcMisses.index()] = llc_refs * llc_miss_rate_of_refs;
        mean[HpcEvent::LlcRefs.index()] = llc_refs;
        mean[HpcEvent::BranchMisses.index()] = instr * branch_miss_rate;
        mean[HpcEvent::DtlbMisses.index()] = instr * dtlb_miss_rate;
        mean[HpcEvent::Stores.index()] = instr * store_rate;
        mean[HpcEvent::PageFaults.index()] = instr / 1.0e6 * page_fault_rate;
        Self::new(mean, 0.10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_scales_with_cpu_share() {
        let sig = Signature::cpu_bound();
        let mut rng = StdRng::seed_from_u64(42);
        let full: f64 = (0..200)
            .map(|_| sig.sample(&mut rng, 1.0).get(HpcEvent::Instructions))
            .sum();
        let half: f64 = (0..200)
            .map(|_| sig.sample(&mut rng, 0.5).get(HpcEvent::Instructions))
            .sum();
        let ratio = half / full;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn samples_are_valid_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        for sig in [
            Signature::cpu_bound(),
            Signature::memory_bound(),
            Signature::llc_thrashing(),
            Signature::hammering(),
            Signature::ransomware(),
            Signature::cryptominer(),
            Signature::graphics_bound(),
        ] {
            for _ in 0..50 {
                let share: f64 = rng.gen();
                assert!(sig.sample(&mut rng, share).is_valid());
            }
        }
    }

    #[test]
    fn attack_signatures_are_separable_from_benign() {
        // The LLC miss *ratio* of the spy classes dwarfs benign programs.
        let spy = Signature::llc_thrashing();
        let benign = Signature::cpu_bound();
        let ratio = |s: &Signature| {
            s.mean()[HpcEvent::LlcMisses.index()] / s.mean()[HpcEvent::Instructions.index()]
        };
        assert!(ratio(&spy) > 10.0 * ratio(&benign));
    }

    #[test]
    fn with_event_overrides_mean() {
        let sig = Signature::cpu_bound().with_event(HpcEvent::PageFaults, 777.0);
        assert_eq!(sig.mean()[HpcEvent::PageFaults.index()], 777.0);
    }

    #[test]
    fn clamped_share_never_exceeds_full_epoch_mean_by_much() {
        let sig = Signature::cpu_bound();
        let mut rng = StdRng::seed_from_u64(9);
        let s = sig.sample(&mut rng, 5.0); // clamped to 1.0
        assert!(s.get(HpcEvent::Instructions) <= sig.mean()[0] * 1.2);
    }
}
