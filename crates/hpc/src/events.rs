//! The fixed HPC event set sampled each epoch.

use std::fmt;

/// Number of distinct hardware events in an [`crate::HpcSample`].
pub const EVENT_COUNT: usize = 10;

/// A hardware performance counter event.
///
/// The set mirrors the events used by the HPC-based detectors the paper
/// augments (Alam et al., Briongos et al., Mushtaq et al.): instruction and
/// cycle counts, cache behaviour at both L1 and LLC, branch prediction, TLB
/// behaviour, memory traffic and OS-visible faults.
///
/// # Examples
///
/// ```
/// use valkyrie_hpc::HpcEvent;
/// assert_eq!(HpcEvent::ALL.len(), valkyrie_hpc::EVENT_COUNT);
/// assert_eq!(HpcEvent::Instructions.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HpcEvent {
    /// Retired instructions.
    Instructions,
    /// Unhalted core cycles.
    Cycles,
    /// L1 data-cache misses.
    L1dMisses,
    /// L1 instruction-cache misses.
    L1iMisses,
    /// Last-level-cache misses.
    LlcMisses,
    /// Last-level-cache references.
    LlcRefs,
    /// Mispredicted branches.
    BranchMisses,
    /// Data-TLB misses.
    DtlbMisses,
    /// Retired store operations.
    Stores,
    /// Page faults (minor + major).
    PageFaults,
}

impl HpcEvent {
    /// All events, in feature-vector order.
    pub const ALL: [HpcEvent; EVENT_COUNT] = [
        HpcEvent::Instructions,
        HpcEvent::Cycles,
        HpcEvent::L1dMisses,
        HpcEvent::L1iMisses,
        HpcEvent::LlcMisses,
        HpcEvent::LlcRefs,
        HpcEvent::BranchMisses,
        HpcEvent::DtlbMisses,
        HpcEvent::Stores,
        HpcEvent::PageFaults,
    ];

    /// Position of this event inside an [`crate::HpcSample`] feature vector.
    pub fn index(self) -> usize {
        match self {
            HpcEvent::Instructions => 0,
            HpcEvent::Cycles => 1,
            HpcEvent::L1dMisses => 2,
            HpcEvent::L1iMisses => 3,
            HpcEvent::LlcMisses => 4,
            HpcEvent::LlcRefs => 5,
            HpcEvent::BranchMisses => 6,
            HpcEvent::DtlbMisses => 7,
            HpcEvent::Stores => 8,
            HpcEvent::PageFaults => 9,
        }
    }

    /// Short perf-style mnemonic for the event.
    pub fn mnemonic(self) -> &'static str {
        match self {
            HpcEvent::Instructions => "instructions",
            HpcEvent::Cycles => "cycles",
            HpcEvent::L1dMisses => "L1-dcache-load-misses",
            HpcEvent::L1iMisses => "L1-icache-load-misses",
            HpcEvent::LlcMisses => "LLC-load-misses",
            HpcEvent::LlcRefs => "LLC-loads",
            HpcEvent::BranchMisses => "branch-misses",
            HpcEvent::DtlbMisses => "dTLB-load-misses",
            HpcEvent::Stores => "mem-stores",
            HpcEvent::PageFaults => "page-faults",
        }
    }
}

impl fmt::Display for HpcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; EVENT_COUNT];
        for ev in HpcEvent::ALL {
            assert!(!seen[ev.index()], "duplicate index for {ev:?}");
            seen[ev.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_order_matches_index() {
        for (i, ev) in HpcEvent::ALL.iter().enumerate() {
            assert_eq!(ev.index(), i);
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(HpcEvent::LlcMisses.to_string(), "LLC-load-misses");
    }
}
