//! Per-epoch HPC measurements and sliding windows of them.

use crate::events::{HpcEvent, EVENT_COUNT};
use std::fmt;
use std::ops::{Add, AddAssign};

/// One epoch's worth of HPC measurements for a single process.
///
/// Counts are stored as `f64` because downstream consumers (detectors) treat
/// them as features; they are non-negative by construction of the emitters.
///
/// # Examples
///
/// ```
/// use valkyrie_hpc::{HpcSample, HpcEvent};
/// let mut s = HpcSample::zero();
/// s.add(HpcEvent::Instructions, 1.0e6);
/// assert_eq!(s.get(HpcEvent::Instructions), 1.0e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HpcSample {
    counts: [f64; EVENT_COUNT],
}

impl HpcSample {
    /// A sample with every counter at zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a sample directly from a feature vector.
    pub fn from_counts(counts: [f64; EVENT_COUNT]) -> Self {
        Self { counts }
    }

    /// Value of one counter.
    pub fn get(&self, ev: HpcEvent) -> f64 {
        self.counts[ev.index()]
    }

    /// Sets one counter.
    pub fn set(&mut self, ev: HpcEvent, v: f64) {
        self.counts[ev.index()] = v;
    }

    /// Adds to one counter.
    pub fn add(&mut self, ev: HpcEvent, v: f64) {
        self.counts[ev.index()] += v;
    }

    /// The raw feature vector, in [`HpcEvent::ALL`] order.
    pub fn as_features(&self) -> &[f64; EVENT_COUNT] {
        &self.counts
    }

    /// Scales every counter by `k` (used when a process only ran for a
    /// fraction of an epoch).
    pub fn scaled(&self, k: f64) -> Self {
        let mut out = *self;
        for c in &mut out.counts {
            *c *= k;
        }
        out
    }

    /// Element-wise maximum with another sample.
    pub fn max(&self, other: &Self) -> Self {
        let mut out = *self;
        for (a, b) in out.counts.iter_mut().zip(other.counts.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
        out
    }

    /// True if every counter is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.counts.iter().all(|c| c.is_finite() && *c >= 0.0)
    }
}

impl Add for HpcSample {
    type Output = HpcSample;
    fn add(mut self, rhs: HpcSample) -> HpcSample {
        self += rhs;
        self
    }
}

impl AddAssign for HpcSample {
    fn add_assign(&mut self, rhs: HpcSample) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += *b;
        }
    }
}

impl fmt::Display for HpcSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HpcSample{{")?;
        for (i, ev) in HpcEvent::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={:.0}", ev.mnemonic(), self.counts[i])?;
        }
        write!(f, "}}")
    }
}

/// A bounded sliding window over the most recent epoch samples of a process.
///
/// Detectors that operate on a time series (the paper's ANN / LSTM detectors)
/// read this window; majority-vote detectors read the per-epoch samples one
/// at a time.
///
/// # Examples
///
/// ```
/// use valkyrie_hpc::{HpcSample, SampleWindow};
/// let mut w = SampleWindow::new(3);
/// for _ in 0..5 {
///     w.push(HpcSample::zero());
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.total_observed(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleWindow {
    capacity: usize,
    /// Retained samples live at `samples[start..]`, oldest first; eviction
    /// advances `start` and the buffer is compacted once `start` reaches
    /// `capacity`, so each sample is moved at most once (amortised O(1)
    /// push instead of an O(window) shift per epoch).
    samples: Vec<HpcSample>,
    start: usize,
    total_observed: u64,
}

impl SampleWindow {
    /// Creates a window keeping the most recent `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sample window capacity must be non-zero");
        Self {
            capacity,
            samples: Vec::with_capacity(capacity),
            start: 0,
            total_observed: 0,
        }
    }

    /// Appends the newest sample, evicting the oldest when full.
    pub fn push(&mut self, s: HpcSample) {
        if self.samples.len() - self.start == self.capacity {
            self.start += 1;
            if self.start >= self.capacity {
                self.samples.drain(..self.start);
                self.start = 0;
            }
        }
        self.samples.push(s);
        self.total_observed += 1;
    }

    /// Samples currently retained, oldest first.
    pub fn samples(&self) -> &[HpcSample] {
        &self.samples[self.start..]
    }

    /// Most recent sample, if any.
    pub fn latest(&self) -> Option<&HpcSample> {
        self.samples.last()
    }

    /// Maximum number of samples retained at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len() - self.start
    }

    /// True when no samples have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of samples ever pushed (the paper's `N_t^i`).
    pub fn total_observed(&self) -> u64 {
        self.total_observed
    }

    /// Per-event mean over the retained samples; zero sample when empty.
    pub fn mean(&self) -> HpcSample {
        if self.samples.is_empty() {
            return HpcSample::zero();
        }
        let mut acc = HpcSample::zero();
        for s in self.samples() {
            acc += *s;
        }
        acc.scaled(1.0 / self.len() as f64)
    }

    /// Per-event population standard deviation over the retained samples.
    pub fn std_dev(&self) -> HpcSample {
        if self.samples.len() < 2 {
            return HpcSample::zero();
        }
        let mean = self.mean();
        let mut var = [0.0; EVENT_COUNT];
        for s in self.samples() {
            for (i, v) in var.iter_mut().enumerate() {
                let d = s.as_features()[i] - mean.as_features()[i];
                *v += d * d;
            }
        }
        let n = self.len() as f64;
        let mut out = HpcSample::zero();
        for (i, v) in var.iter().enumerate() {
            out.set(HpcEvent::ALL[i], (v / n).sqrt());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_with(instr: f64) -> HpcSample {
        let mut s = HpcSample::zero();
        s.set(HpcEvent::Instructions, instr);
        s
    }

    #[test]
    fn add_and_scale() {
        let a = sample_with(10.0);
        let b = sample_with(20.0);
        let c = a + b;
        assert_eq!(c.get(HpcEvent::Instructions), 30.0);
        assert_eq!(c.scaled(0.5).get(HpcEvent::Instructions), 15.0);
    }

    #[test]
    fn window_eviction_keeps_latest() {
        let mut w = SampleWindow::new(2);
        w.push(sample_with(1.0));
        w.push(sample_with(2.0));
        w.push(sample_with(3.0));
        assert_eq!(w.len(), 2);
        assert_eq!(w.samples()[0].get(HpcEvent::Instructions), 2.0);
        assert_eq!(w.latest().unwrap().get(HpcEvent::Instructions), 3.0);
        assert_eq!(w.total_observed(), 3);
    }

    #[test]
    fn window_mean_and_std() {
        let mut w = SampleWindow::new(4);
        w.push(sample_with(2.0));
        w.push(sample_with(4.0));
        assert_eq!(w.mean().get(HpcEvent::Instructions), 3.0);
        assert!((w.std_dev().get(HpcEvent::Instructions) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = SampleWindow::new(0);
    }

    #[test]
    fn validity_check() {
        let mut s = HpcSample::zero();
        assert!(s.is_valid());
        s.set(HpcEvent::Cycles, f64::NAN);
        assert!(!s.is_valid());
    }

    #[test]
    fn elementwise_max() {
        let a = sample_with(1.0);
        let mut b = sample_with(0.5);
        b.set(HpcEvent::Cycles, 9.0);
        let m = a.max(&b);
        assert_eq!(m.get(HpcEvent::Instructions), 1.0);
        assert_eq!(m.get(HpcEvent::Cycles), 9.0);
    }
}
