//! Hardware-performance-counter (HPC) substrate.
//!
//! The paper's detectors consume per-epoch HPC measurements captured with the
//! Linux `perf` tool (one measurement every 100 ms). This crate provides the
//! simulated equivalent: a fixed set of [`HpcEvent`]s, a per-epoch
//! [`HpcSample`] feature vector, and generative [`Signature`]s that workloads
//! use to emit realistic, noisy counter streams.
//!
//! The substitution preserves what matters to Valkyrie: detectors only ever
//! see per-process feature vectors whose distributions are
//! separable-but-overlapping between benign programs and time-progressive
//! attacks, so both true detections and false positives occur.
//!
//! # Examples
//!
//! ```
//! use valkyrie_hpc::{Signature, HpcEvent};
//! use rand::SeedableRng;
//!
//! let sig = Signature::cpu_bound();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let sample = sig.sample(&mut rng, 1.0);
//! assert!(sample.get(HpcEvent::Instructions) > 0.0);
//! ```

pub mod events;
pub mod sample;
pub mod signature;

pub use events::{HpcEvent, EVENT_COUNT};
pub use sample::{HpcSample, SampleWindow};
pub use signature::Signature;
