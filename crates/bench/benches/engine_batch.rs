//! Throughput benches for the sharded batch-observation engine.
//!
//! One group per fleet size (`core/engine_batch_1k` / `_10k` / `_100k`),
//! each comparing:
//!
//! * `observe_loop` — the paper-era driver: one `ValkyrieEngine::observe`
//!   call per process per tick (the pre-scaling baseline API);
//! * `sharded_xN` — the same workload through
//!   `ShardedEngine::observe_batch` with `N` shards (one tick = one batch),
//!   scoped-spawn execution: fresh threads per tick on multi-core hosts;
//! * `pool_xN` — the same `N`-shard workload through the persistent worker
//!   pool (`ExecutionMode::Pool`): long-lived workers fed over channels,
//!   no per-tick spawns. `sharded_xN` vs `pool_xN` at the same `N` is the
//!   spawn-per-tick vs persistent-workers comparison — measured, not
//!   asserted;
//! * `ingest_xN` / `ingest_pool_xN` — the same workload through the async
//!   ingest tier: every tick publishes the batch into the bounded
//!   per-shard rings (`OverflowPolicy::Block`, capacity sized so nothing
//!   blocks) and drains it back with `drain_batch`. Against `sharded_xN`
//!   at the same `N` this prices the queue hop + publish-order merge the
//!   decoupling costs; the pool variants additionally route the drain
//!   through the persistent workers (each draining its own shards in
//!   place);
//! * `fusion_xN` — the same workload carried as `Verdict`s through the
//!   weighted-evidence fusion tier (`observe_verdict_batch`) under the
//!   degenerate unit-weight/BINARY-ladder config. Against `sharded_xN` at
//!   the same `N` this prices the per-process evidence-table hop (fuse +
//!   escalate) the fused path adds over flat binary observation;
//! * `fleet_xN` — the same fleet spread across 256 machines through the
//!   hierarchical `FleetEngine` (`N` machine-sharded groups × 2 pid
//!   shards, global pids packed with `ProcessId::from_parts`). Against
//!   `sharded_x2N` this prices the extra machine-level partition/scatter
//!   hop the cluster tier adds per tick.
//!
//! A separate `core/engine_batch_flood` group (`flood_x{1,4}`) drives the
//! same 10k fleet through undersized defended rings while a `NoiseFlood`
//! decoy stream forces the overflow path — pricing the priority lane +
//! fair-queueing bookkeeping at full eviction pressure.
//!
//! Every variant replays the identical workload: the full fleet observed
//! each tick, one in seven processes flagged on a rotating schedule so
//! monitors keep moving through throttle/recover transitions without
//! terminating (`N*` is set beyond the horizon). Timings are per tick;
//! divide the fleet size by the printed time for observations/second.
//! Shard speedups require hardware parallelism — on a single-core runner
//! `sharded_xN` only measures the partition/scatter overhead, and
//! `pool_xN` the channel round-trips on top of it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use valkyrie_core::prelude::*;
use valkyrie_workloads::NoiseFlood;

fn engine_config(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
        .build()
        .unwrap()
}

fn tick_batch(procs: u64, epoch: u64) -> Vec<(ProcessId, Classification)> {
    (0..procs)
        .map(|pid| {
            let cls = if (pid + epoch).is_multiple_of(7) {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            (ProcessId(pid), cls)
        })
        .collect()
}

/// The cluster-tier batch: the same flag schedule, pids spread round-robin
/// across 256 machines of the packed global namespace.
fn fleet_tick_batch(procs: u64, epoch: u64) -> Vec<(ProcessId, Classification)> {
    (0..procs)
        .map(|i| {
            let cls = if (i + epoch).is_multiple_of(7) {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            (ProcessId::from_parts((i % 256) as u32, i / 256), cls)
        })
        .collect()
}

fn bench_fleet(c: &mut Criterion, label: &str, procs: u64) {
    let mut group = c.benchmark_group(label);
    // N* beyond any horizon the bench reaches: no process terminates, the
    // map stays at `procs` entries and every tick is pure observe work.
    let n_star = 1_u64 << 40;
    // The `(pid + epoch) % 7` flag pattern has period 7 in the epoch, so a
    // ring of 7 pre-built batches covers every tick: batch assembly is the
    // embedder's job and stays outside the timed closures in *all*
    // variants — only engine work is measured.
    let ring: Vec<Vec<(ProcessId, Classification)>> =
        (0..7).map(|epoch| tick_batch(procs, epoch)).collect();

    group.bench_function("observe_loop", |b| {
        let mut engine = ValkyrieEngine::with_capacity(engine_config(n_star), procs as usize);
        let mut epoch = 0usize;
        b.iter(|| {
            epoch += 1;
            for &(pid, cls) in &ring[epoch % 7] {
                black_box(engine.observe(pid, cls));
            }
        });
    });

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("sharded_x{shards}").as_str(), |b| {
            let mut engine =
                ShardedEngine::with_capacity(engine_config(n_star), shards, procs as usize);
            let mut epoch = 0usize;
            b.iter(|| {
                epoch += 1;
                black_box(engine.observe_batch(black_box(&ring[epoch % 7])))
            });
        });
    }

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("pool_x{shards}").as_str(), |b| {
            let mut engine = ShardedEngine::with_mode(
                engine_config(n_star),
                shards,
                procs as usize,
                ExecutionMode::Pool,
            );
            let mut epoch = 0usize;
            b.iter(|| {
                epoch += 1;
                black_box(engine.observe_batch(black_box(&ring[epoch % 7])))
            });
        });
    }

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("ingest_x{shards}").as_str(), |b| {
            let mut engine =
                ShardedEngine::with_capacity(engine_config(n_star), shards, procs as usize);
            // Capacity covers a whole tick per shard: Block never blocks,
            // the rings stay lossless, and the timing is publish + drain.
            let publisher = engine.enable_ingest(procs as usize, OverflowPolicy::Block);
            let mut epoch = 0usize;
            b.iter(|| {
                epoch += 1;
                publisher.publish_batch(black_box(&ring[epoch % 7]));
                black_box(engine.drain_batch())
            });
        });
    }

    // The fused-verdict path: the identical flag schedule carried as
    // `Verdict`s (detector 0, confidence 0/1) through the weighted-evidence
    // fusion tier with the degenerate unit-weight/BINARY-ladder config, so
    // against `sharded_xN` at the same `N` this prices exactly the
    // per-process evidence-table hop (fuse + escalate) over the flat
    // binary observation path.
    let verdict_ring: Vec<Vec<(ProcessId, Verdict)>> = ring
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|&(pid, cls)| (pid, Verdict::from_classification(0, cls)))
                .collect()
        })
        .collect();
    for shards in [1usize, 4] {
        group.bench_function(format!("fusion_x{shards}").as_str(), |b| {
            let config = EngineConfig::builder()
                .measurements_required(n_star)
                .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
                .fusion(FusionConfig {
                    weights: Vec::new(),
                    default_weight: 1.0,
                    stale_decay: 1.0,
                    ladder: EscalationLadder::BINARY,
                })
                .build()
                .unwrap();
            let mut engine = ShardedEngine::with_capacity(config, shards, procs as usize);
            let mut epoch = 0usize;
            b.iter(|| {
                epoch += 1;
                black_box(engine.observe_verdict_batch(black_box(&verdict_ring[epoch % 7])))
            });
        });
    }

    let fleet_ring: Vec<Vec<(ProcessId, Classification)>> =
        (0..7).map(|epoch| fleet_tick_batch(procs, epoch)).collect();
    for groups in [1usize, 4] {
        group.bench_function(format!("fleet_x{groups}").as_str(), |b| {
            let mut engine =
                FleetEngine::with_capacity(engine_config(n_star), groups, 2, procs as usize);
            let mut epoch = 0usize;
            b.iter(|| {
                epoch += 1;
                black_box(engine.observe_batch(black_box(&fleet_ring[epoch % 7])))
            });
        });
    }

    for shards in [1usize, 4] {
        group.bench_function(format!("ingest_pool_x{shards}").as_str(), |b| {
            let mut engine = ShardedEngine::with_mode(
                engine_config(n_star),
                shards,
                procs as usize,
                ExecutionMode::Pool,
            );
            let publisher = engine.enable_ingest(procs as usize, OverflowPolicy::Block);
            let mut epoch = 0usize;
            b.iter(|| {
                epoch += 1;
                publisher.publish_batch(black_box(&ring[epoch % 7]));
                black_box(engine.drain_batch())
            });
        });
    }
    group.finish();
}

fn bench_engine_batch_1k(c: &mut Criterion) {
    bench_fleet(c, "core/engine_batch_1k", 1_000);
}

fn bench_engine_batch_10k(c: &mut Criterion) {
    bench_fleet(c, "core/engine_batch_10k", 10_000);
}

fn bench_engine_batch_100k(c: &mut Criterion) {
    bench_fleet(c, "core/engine_batch_100k", 100_000);
}

/// The ingest rings under the noise-flood defense: undersized `DropOldest`
/// rings with the priority lane + per-publisher fair queueing armed, a
/// legit publisher racing a decoy flood from a second handle every epoch.
/// Each tick publishes the 10k-process fleet, then a `NoiseFlood` decoy
/// burst at every shard, then drains — so the eviction path, the
/// heaviest-publisher scan and the two-lane seq merge all run every
/// iteration. Against `ingest_xN` in `core/engine_batch_10k` (lossless
/// rings, no flood, no defense) this prices the defended overflow path at
/// its worst: every decoy is an eviction decision.
fn bench_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/engine_batch_flood");
    let n_star = 1_u64 << 40;
    const PROCS: u64 = 10_000;
    let ring: Vec<Vec<(ProcessId, Classification)>> =
        (0..7).map(|epoch| tick_batch(PROCS, epoch)).collect();
    for shards in [1usize, 4] {
        group.bench_function(format!("flood_x{shards}").as_str(), |b| {
            let mut engine =
                ShardedEngine::with_capacity(engine_config(n_star), shards, PROCS as usize);
            // Per-shard capacity below a tick's worth of traffic: the
            // flood forces overflow — and therefore the fair-queueing
            // eviction scan — on every single tick.
            let publisher = engine.enable_ingest_defended(
                4_096,
                OverflowPolicy::DropOldest,
                IngestDefense::full(),
            );
            let flood_pub = publisher.clone();
            let flood = NoiseFlood::new(0xF100D, shards, (0..shards).collect()).with_rate(2_048);
            // Decoy batches are a pure function of the epoch; like the
            // legit ring they are assembled outside the timed closure.
            let decoy_ring: Vec<Vec<(ProcessId, Classification)>> = (0..8)
                .map(|epoch| {
                    let mut out = Vec::new();
                    flood.decoys_into(epoch, &mut out);
                    out
                })
                .collect();
            let mut epoch = 0usize;
            b.iter(|| {
                epoch += 1;
                publisher.publish_batch(black_box(&ring[epoch % 7]));
                flood_pub.publish_batch(black_box(&decoy_ring[epoch % 8]));
                black_box(engine.drain_batch())
            });
        });
    }
    group.finish();
}

/// The epoch driver with churn: attacks terminate and are purged while
/// fresh pids keep arriving, so the map is exercised under registration +
/// eviction pressure, not just steady-state lookups — in both execution
/// modes (`sharded_*` = scoped spawns, `pool_*` = persistent workers).
fn bench_tick_with_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/engine_batch_tick_churn");
    for (mode, label) in [
        (ExecutionMode::ScopedSpawn, "sharded"),
        (ExecutionMode::Pool, "pool"),
    ] {
        for shards in [1usize, 4] {
            group.bench_function(format!("{label}_x{shards}_10k").as_str(), |b| {
                let config = EngineConfig::builder()
                    .measurements_required(3)
                    .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
                    .build()
                    .unwrap();
                let mut engine = ShardedEngine::with_mode(config, shards, 10_000, mode);
                let mut epoch = 0u64;
                b.iter(|| {
                    epoch += 1;
                    // A rotating 1/64 slice of the pid space is attacked every
                    // epoch; terminated pids are purged by `tick` and replaced
                    // by their successors the next epoch. The pid base shifts
                    // over time, so the batch is assembled inside the timed
                    // loop — identically for every shard count, which keeps
                    // the x1-vs-x4 comparison fair.
                    let batch: Vec<(ProcessId, Classification)> = (0..10_000u64)
                        .map(|i| {
                            let pid = ProcessId(i + (epoch / 8) * 157);
                            let cls = if (i + epoch).is_multiple_of(64) {
                                Classification::Malicious
                            } else {
                                Classification::Benign
                            };
                            (pid, cls)
                        })
                        .collect();
                    black_box(engine.tick(black_box(&batch)))
                });
            });
        }
    }
    group.finish();
}

/// The adaptive evasion loop end-to-end: one `run_adaptive` replay of a
/// probing attacker (a `LawProbe` burst feeding an `IntensityModulator`)
/// against the default percent-point law over a 120-epoch horizon. This is
/// the unit of work the best-response search re-evaluates hundreds of times
/// per ranked law, so its cost bounds the `adaptive` experiment's runtime.
fn bench_adaptive(c: &mut Criterion) {
    use valkyrie_core::evasion::{
        run_adaptive, AdaptiveScenario, DetectorModel, IntensityModulator, LawProbe,
    };
    let mut group = c.benchmark_group("core/engine_batch_adaptive");
    group.bench_function("adaptive_x1", |b| {
        let config = EngineConfig::builder()
            .measurements_required(30)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let detector = DetectorModel::new(0.9, 0.04).unwrap();
        let scenario = AdaptiveScenario::new(detector, 120);
        let mut strategy = LawProbe::new(3, IntensityModulator::new(1.0, 0.3, 0.8, 30, 0.0));
        b.iter(|| black_box(run_adaptive(&config, black_box(&scenario), &mut strategy)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_batch_1k,
    bench_engine_batch_10k,
    bench_engine_batch_100k,
    bench_flood,
    bench_tick_with_churn,
    bench_adaptive,
);
criterion_main!(benches);
