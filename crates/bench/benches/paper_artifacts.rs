//! One benchmark group per paper table/figure: each runs a scaled-down
//! version of the exact experiment code, so regressions in any scenario's
//! cost are caught alongside the correctness tests.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use valkyrie_experiments as x;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("fig1_efficacy_curves", |b| {
        let cfg = x::fig1::Fig1Config {
            ransomware: 8,
            benign: 8,
            trace_len: 20,
            grid_max: 19,
            train_cap: 400,
            seed: 1,
        };
        b.iter(|| black_box(x::fig1::run(&cfg)));
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("table2_resource_sweep", |b| {
        let cfg = x::table2::Table2Config {
            epochs: 10,
            seed: 2,
        };
        b.iter(|| black_box(x::table2::run(&cfg)));
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = quick(c);
    let cfg = x::fig4::Fig4Config {
        epochs: 15,
        n_star: 8,
        threshold: 3.5,
        seed: 3,
    };
    g.bench_function("fig4a_l1d_aes", |b| {
        b.iter(|| black_box(x::fig4::run_a(&cfg)))
    });
    g.bench_function("fig4c_tsa", |b| b.iter(|| black_box(x::fig4::run_c(&cfg))));
    g.bench_function("fig4e_llc_channel", |b| {
        b.iter(|| black_box(x::fig4::run_e(&cfg)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("fig5a_single_benchmark", |b| {
        let cfg = x::fig5::Fig5Config {
            runtime_divisor: 12,
            multithreaded: false,
            ..x::fig5::Fig5Config::default()
        };
        // One representative benchmark (blender_r) through the full loop.
        b.iter(|| {
            let r = x::fig5::run_5a(&x::fig5::Fig5Config {
                runtime_divisor: 16,
                ..cfg.clone()
            });
            black_box(r.rows.len())
        });
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = quick(c);
    let cfg = x::fig6::Fig6Config {
        hammer_epochs_without: 300,
        hammer_epochs_with: 600,
        epochs: 10,
        n_star: 8,
        use_lstm: false,
        seed: 4,
    };
    g.bench_function("fig6a_rowhammer", |b| {
        b.iter(|| black_box(x::fig6::run_a(&cfg)))
    });
    g.bench_function("fig6b_ransomware", |b| {
        b.iter(|| black_box(x::fig6::run_b(&cfg)))
    });
    g.bench_function("fig6c_cryptominer", |b| {
        b.iter(|| black_box(x::fig6::run_c(&cfg)))
    });
    g.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("analytic_worked_example", |b| {
        b.iter(|| black_box(x::analytic::run()))
    });
    g.finish();
}

fn bench_responses(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("responses_table1_quantified", |b| {
        let cfg = x::responses::ResponsesConfig {
            benign_trials: 6,
            benign_epochs: 100,
            ..x::responses::ResponsesConfig::default()
        };
        b.iter(|| black_box(x::responses::run(&cfg)));
    });
    g.finish();
}

fn bench_evasion(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("evasion_duty_cycle_sweep", |b| {
        let cfg = x::evasion::EvasionConfig {
            trials: 4,
            horizon: 60,
            ..x::evasion::EvasionConfig::default()
        };
        b.iter(|| black_box(x::evasion::run(&cfg)));
    });
    g.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let mut g = quick(c);
    g.bench_function("ensemble_two_level_detection", |b| {
        let cfg = x::ensemble::EnsembleConfig {
            grid_max: 11,
            ..x::ensemble::EnsembleConfig::quick()
        };
        b.iter(|| black_box(x::ensemble::run(&cfg)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_table2,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_analytic,
    bench_responses,
    bench_evasion,
    bench_ensemble,
);
criterion_main!(benches);
