//! ML-tier benchmarks: training cost per model family (`ml_train`) and
//! batched inference throughput (`ml_infer`).
//!
//! The inference benches pit the scalar `score` loop against the batched
//! kernels (`score_batch` / `predict_batch`) on the same inputs — the two
//! are bit-identical (pinned by `tests/properties.rs`), so any gap here is
//! pure perf headroom, and any regression is a kernel rot.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use valkyrie_ml::{
    BinaryClassifier, Gbdt, GbdtConfig, LinearSvm, Lstm, LstmConfig, Mlp, MlpConfig, SvmConfig,
};

const DIM: usize = 10;

fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs = (0..n)
        .map(|i| {
            let c = if i % 2 == 0 { 1.0 } else { -1.0 };
            (0..DIM).map(|_| c + rng.gen::<f64>()).collect()
        })
        .collect();
    let ys = (0..n).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
    (xs, ys)
}

fn sequences(n: usize, len: usize, seed: u64) -> (Vec<Vec<Vec<f64>>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let seqs = (0..n)
        .map(|i| {
            let c = if i % 2 == 0 { 0.8 } else { -0.8 };
            (0..len)
                .map(|_| (0..DIM).map(|_| c + rng.gen::<f64>()).collect())
                .collect()
        })
        .collect();
    let ys = (0..n).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
    (seqs, ys)
}

fn bench_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("ml_train");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_secs(1));
    let (xs, ys) = blobs(800, 11);
    g.bench_function("svm_train_800", |b| {
        b.iter(|| black_box(LinearSvm::train(&SvmConfig::default(), &xs, &ys)))
    });
    g.bench_function("gbdt_train_800", |b| {
        b.iter(|| black_box(Gbdt::train(&GbdtConfig::default(), &xs, &ys)))
    });
    g.bench_function("gbdt_train_800_seq", |b| {
        let cfg = GbdtConfig {
            workers: 1,
            ..GbdtConfig::default()
        };
        b.iter(|| black_box(Gbdt::train(&cfg, &xs, &ys)))
    });
    g.bench_function("mlp_train_800", |b| {
        let cfg = MlpConfig::small_ann(DIM).with_epochs(30);
        b.iter(|| black_box(Mlp::train(&cfg, &xs, &ys)))
    });
    let (seqs, sys) = sequences(24, 12, 13);
    g.bench_function("lstm_train_24x12", |b| {
        let cfg = LstmConfig {
            epochs: 10,
            ..LstmConfig::new(DIM, 8)
        };
        b.iter(|| black_box(Lstm::train(&cfg, &seqs, &sys)))
    });
    g.finish();
}

fn bench_infer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ml_infer");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_secs(1));
    let (xs, ys) = blobs(800, 17);
    let (batch, _) = blobs(1024, 19);
    let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
    let gbdt = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
    let mlp = Mlp::train(&MlpConfig::small_ann(DIM).with_epochs(30), &xs, &ys);
    let models: [(&str, &dyn BinaryClassifier); 3] =
        [("svm", &svm), ("gbdt", &gbdt), ("mlp", &mlp)];
    for (name, model) in models {
        g.bench_function(&format!("{name}_scalar_1024"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for x in &batch {
                    acc += model.score(x);
                }
                black_box(acc)
            })
        });
        let mut out = Vec::new();
        g.bench_function(&format!("{name}_batch_1024"), |b| {
            b.iter(|| {
                model.score_batch_into(&batch, &mut out);
                black_box(out.len())
            })
        });
    }
    let (seqs, sys) = sequences(24, 12, 23);
    let lstm = Lstm::train(
        &LstmConfig {
            epochs: 10,
            ..LstmConfig::new(DIM, 8)
        },
        &seqs,
        &sys,
    );
    let (infer_seqs, _) = sequences(64, 12, 29);
    g.bench_function("lstm_scalar_64x12", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in &infer_seqs {
                acc += lstm.predict_proba(s);
            }
            black_box(acc)
        })
    });
    g.bench_function("lstm_batch_64x12", |b| {
        b.iter(|| black_box(lstm.predict_batch(&infer_seqs).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_train, bench_infer);
criterion_main!(benches);
