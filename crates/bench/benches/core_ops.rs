//! Benchmarks of the Valkyrie core primitives: per-epoch monitor steps,
//! engine observations, actuator laws and `N*` planning.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use valkyrie_core::prelude::*;
use valkyrie_core::Monitor;

fn bench_monitor_step(c: &mut Criterion) {
    c.bench_function("core/monitor_observe", |b| {
        let mut m = Monitor::new(
            1_000_000,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
        );
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let c = if flip {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            black_box(m.observe(c))
        });
    });
}

fn bench_engine_observe(c: &mut Criterion) {
    c.bench_function("core/engine_observe_100_procs", |b| {
        let config = EngineConfig::builder()
            .measurements_required(1_000_000)
            .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
            .build()
            .unwrap();
        let mut engine = ValkyrieEngine::new(config);
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            for pid in 0..100 {
                let cls = if (pid + epoch).is_multiple_of(7) {
                    Classification::Malicious
                } else {
                    Classification::Benign
                };
                black_box(engine.observe(ProcessId(pid), cls));
            }
        });
    });
}

fn bench_actuator_laws(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/actuator_laws");
    for (name, law) in [
        (
            "percent_point",
            ThrottleLaw::PercentPointPerUnit { step: 0.1 },
        ),
        (
            "multiplicative",
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
        ),
        (
            "scheduler_weight",
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ),
        ("halving", ThrottleLaw::HalvePerEvent),
    ] {
        group.bench_function(name, |b| {
            let mut share = 1.0;
            let mut delta = 1.0;
            b.iter(|| {
                share = law.step_share(black_box(share), black_box(delta));
                if share <= 0.011 || share >= 0.999 {
                    delta = -delta;
                }
                black_box(share)
            });
        });
    }
    group.finish();
}

fn bench_efficacy_planning(c: &mut Criterion) {
    let points: Vec<EfficacyPoint> = (1..=75)
        .map(|n| EfficacyPoint {
            measurements: n,
            f1: 0.6 + 0.35 * (n as f64 / 75.0),
            fpr: 0.4 * (1.0 - n as f64 / 75.0),
        })
        .collect();
    let curve = EfficacyCurve::new(points).unwrap();
    let spec = EfficacySpec::f1_at_least(0.9).and_fpr_at_most(0.1);
    c.bench_function("core/n_star_planning", |b| {
        b.iter(|| black_box(curve.measurements_required(black_box(&spec))))
    });
}

fn bench_slowdown_simulation(c: &mut Criterion) {
    use valkyrie_core::simulate_response;
    let inferences: Vec<Classification> = (0..100)
        .map(|i| {
            if i % 3 == 0 {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        })
        .collect();
    c.bench_function("core/simulate_response_100_epochs", |b| {
        b.iter(|| {
            black_box(simulate_response(
                50,
                black_box(&inferences),
                AssessmentFn::incremental(),
                AssessmentFn::incremental(),
                ShareActuator::cpu_percent_point(0.10, 0.01),
            ))
        })
    });
}

fn bench_evasion_replay(c: &mut Criterion) {
    use valkyrie_core::{
        run_evasion, AttackerStrategy, DetectorModel, EngineConfig, EvasionScenario,
    };
    let config = EngineConfig::builder()
        .measurements_required(30)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .build()
        .unwrap();
    let scenario = EvasionScenario::new(
        AttackerStrategy::ThreatAdaptive { resume_above: 0.7 },
        DetectorModel::new(0.9, 0.04).unwrap(),
        120,
    );
    c.bench_function("core/evasion_replay_120_epochs", |b| {
        b.iter(|| black_box(run_evasion(black_box(&config), black_box(&scenario))))
    });
}

fn bench_baseline_policies(c: &mut Criterion) {
    use valkyrie_core::migration::{migration_progress, MigrationPolicy};
    use valkyrie_core::{ConsecutiveTermination, PriorityReduction};
    let inferences: Vec<Classification> = (0..300)
        .map(|i| {
            if i % 25 == 0 {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        })
        .collect();
    c.bench_function("core/baseline_k_consecutive_300_epochs", |b| {
        let policy = ConsecutiveTermination::new(3);
        b.iter(|| black_box(policy.run(black_box(&inferences))))
    });
    c.bench_function("core/baseline_survival_probability_dp", |b| {
        let policy = ConsecutiveTermination::new(3);
        b.iter(|| black_box(policy.benign_survival_probability(black_box(0.04), 300)))
    });
    c.bench_function("core/baseline_priority_reduction_300_epochs", |b| {
        let policy = PriorityReduction::new(0.5);
        b.iter(|| black_box(policy.run(black_box(&inferences))))
    });
    c.bench_function("core/baseline_migration_300_epochs", |b| {
        b.iter(|| {
            black_box(migration_progress(
                black_box(&inferences),
                MigrationPolicy::system_migration(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_monitor_step,
    bench_engine_observe,
    bench_actuator_laws,
    bench_efficacy_planning,
    bench_slowdown_simulation,
    bench_evasion_replay,
    bench_baseline_policies,
);
criterion_main!(benches);
