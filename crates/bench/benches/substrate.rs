//! Benchmarks of the simulated substrates: scheduler, caches, DRAM, crypto
//! and detector inference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valkyrie_attacks::crypto::aes::Aes128;
use valkyrie_attacks::crypto::sha256::sha256d;
use valkyrie_attacks::crypto::stream::StreamCipher;
use valkyrie_detect::StatisticalDetector;
use valkyrie_hpc::{HpcSample, Signature};
use valkyrie_sim::dram::{Dram, DramConfig};
use valkyrie_sim::fs::SimFs;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Machine, MachineConfig, Workload};
use valkyrie_sim::sched::{CfsScheduler, SchedConfig};
use valkyrie_sim::Pid;
use valkyrie_uarch::{Cache, CacheConfig};

fn bench_scheduler_epoch(c: &mut Criterion) {
    c.bench_function("sim/cfs_epoch_8_procs", |b| {
        let mut s = CfsScheduler::new(SchedConfig::default());
        for i in 0..8 {
            s.add(Pid(i), 0);
        }
        s.set_weight_scale(Pid(0), 0.01);
        b.iter(|| black_box(s.run(100)));
    });
}

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("uarch/l1d_access", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let addr = rng.gen_range(0u64..1 << 20);
            black_box(cache.access(addr))
        });
    });
    c.bench_function("uarch/prime_probe_set", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        b.iter(|| {
            cache.prime_set(7, 100);
            black_box(cache.probe_set(7, 100))
        });
    });
}

fn bench_dram_window(c: &mut Criterion) {
    c.bench_function("sim/dram_hammer_window", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dram = Dram::new(DramConfig::ddr3_1333());
        b.iter(|| {
            dram.hammer_pair(100, 102, 1_280_000, &mut rng);
            dram.advance_ms(64, &mut rng);
            black_box(dram.flipped_bits())
        });
    });
}

fn bench_crypto(c: &mut Criterion) {
    c.bench_function("crypto/aes128_block", |b| {
        let aes = Aes128::new(&[7u8; 16]);
        let pt = [0x42u8; 16];
        b.iter(|| black_box(aes.encrypt_block(black_box(&pt))));
    });
    c.bench_function("crypto/sha256d_80B", |b| {
        let header = [0x17u8; 80];
        b.iter(|| black_box(sha256d(black_box(&header))));
    });
    c.bench_function("crypto/stream_4KiB", |b| {
        let mut cipher = StreamCipher::new(9);
        let mut buf = vec![0u8; 4096];
        b.iter(|| {
            cipher.apply(&mut buf);
            black_box(buf[0])
        });
    });
}

fn bench_simfs(c: &mut Criterion) {
    c.bench_function("sim/simfs_generate_100k", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| black_box(SimFs::generate(&mut rng, 100_000, 1 << 20).total_bytes()));
    });
    c.bench_function("sim/simfs_snapshot_1m", |b| {
        // What Table II pays per measurement since the SoA refactor: an
        // Arc bump for the size table plus a bitset copy.
        let fs = SimFs::uniform("/data/f", 1_000_000, 2257);
        b.iter(|| black_box(fs.clone().len()));
    });
}

/// A minimal CPU-bound workload, so the epoch-loop bench measures the
/// machine (scheduler + controllers + slab bookkeeping), not a workload.
struct Spin;

impl Workload for Spin {
    fn name(&self) -> &str {
        "spin"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        EpochReport {
            progress: ctx.cpu_share(),
            hpc: HpcSample::zero(),
            completed: false,
        }
    }
}

fn bench_machine_epoch(c: &mut Criterion) {
    c.bench_function("sim/machine_epoch_16_procs", |b| {
        let mut m = Machine::new(MachineConfig::default());
        for _ in 0..16 {
            m.spawn(Box::new(Spin));
        }
        let mut reports = Vec::new();
        b.iter(|| {
            m.run_epoch_into(&mut reports);
            black_box(reports.len())
        });
    });
}

fn bench_detector_inference(c: &mut Criterion) {
    c.bench_function("detect/zscore_inference", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let baseline: Vec<_> = (0..600)
            .map(|_| Signature::cpu_bound().sample(&mut rng, 1.0))
            .collect();
        let det = StatisticalDetector::fit_normalized(&baseline, 4.0);
        let sample = Signature::llc_thrashing().sample(&mut rng, 1.0);
        b.iter(|| black_box(det.score(black_box(&sample))));
    });
}

criterion_group!(
    benches,
    bench_scheduler_epoch,
    bench_cache_access,
    bench_dram_window,
    bench_crypto,
    bench_simfs,
    bench_machine_epoch,
    bench_detector_inference,
);
criterion_main!(benches);
