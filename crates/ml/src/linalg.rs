//! Minimal dense linear-algebra helpers (row-major `f64` matrices).

use rand::Rng;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::linalg::Matrix;
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Self { rows, cols, data }
    }

    /// Builds from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or no rows are given.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        let data = rows.into_iter().flatten().collect();
        Self {
            rows: 0,
            cols,
            data,
        }
        .with_rows_inferred()
    }

    fn with_rows_inferred(mut self) -> Self {
        self.rows = self.data.len().checked_div(self.cols).unwrap_or(0);
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix-vector product (`Mᵀ x`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += m * xr;
            }
        }
        out
    }

    /// `self += k · (a ⊗ b)` — rank-one update used by SGD.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, k: f64, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows, "outer-product rows mismatch");
        assert_eq!(b.len(), self.cols, "outer-product cols mismatch");
        for (r, &ar) in a.iter().enumerate() {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (m, &bc) in row.iter_mut().zip(b) {
                *m += k * ar * bc;
            }
        }
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot-product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.5], &[3.0, 1.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
        // Stability at extremes.
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn random_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random(5, 5, 0.3, &mut rng);
        for r in 0..5 {
            for c in 0..5 {
                assert!(m.get(r, c).abs() <= 0.3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }
}
