//! Minimal dense linear-algebra helpers (row-major `f64` matrices).

use rand::Rng;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::linalg::Matrix;
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix (useful as a scratch-buffer seed).
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Reshapes to `rows × cols` filled with zeros, reusing the backing
    /// buffer — the resize path for caller-owned scratch matrices.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// A matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Self { rows, cols, data }
    }

    /// Builds from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths, no rows are given, or the rows
    /// are zero-width. (A zero-width first row used to silently infer
    /// `rows = 0` through `checked_div`, producing an empty matrix that
    /// passed every later dimension check while holding no data.)
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix rows must be non-empty");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        let n = rows.len();
        let data: Vec<f64> = rows.into_iter().flatten().collect();
        Self::from_flat(n, cols, data)
    }

    /// Builds from an already-flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer must be rows × cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// The flat row-major backing buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major backing buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix-vector product (`Mᵀ x`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += m * xr;
            }
        }
        out
    }

    /// Matrix-vector product into a caller-owned buffer (no allocation).
    ///
    /// Bit-identical to [`Matrix::matvec`]: each output element is the same
    /// left-to-right dot-product fold.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Transposed matrix-vector product (`Mᵀ x`) into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn matvec_t_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += m * xr;
            }
        }
    }

    /// Blocked matrix product `self · rhs` written row-major into `out`.
    ///
    /// Uses an i-k-j loop (unit stride over both `rhs` and `out` rows,
    /// tiled over the output rows so `rhs` stays cache-hot). For every
    /// output element the `k` accumulation runs in ascending order into a
    /// single slot, so each element is bit-identical to the scalar
    /// dot-product fold of [`Matrix::matvec`].
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == rhs.rows` and `out.len()` is
    /// `self.rows * rhs.cols`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut [f64]) {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        assert_eq!(out.len(), self.rows * rhs.cols, "output size mismatch");
        let m = rhs.cols;
        out.fill(0.0);
        const TILE: usize = 16;
        for i0 in (0..self.rows).step_by(TILE) {
            let i1 = (i0 + TILE).min(self.rows);
            for i in i0..i1 {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let o_row = &mut out[i * m..(i + 1) * m];
                for (k, &aik) in a_row.iter().enumerate() {
                    let b_row = &rhs.data[k * m..(k + 1) * m];
                    for (o, &b) in o_row.iter_mut().zip(b_row) {
                        *o += aik * b;
                    }
                }
            }
        }
    }

    /// Blocked matrix product `self · rhsᵀ` written row-major into `out`.
    ///
    /// `rhs` is read untransposed (row-major), so both operands stream with
    /// unit stride — the natural kernel when `rhs` holds one weight vector
    /// per row. Each output element is the same left-to-right dot fold as
    /// [`dot`], so results are bit-identical to per-row `matvec` calls.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols == rhs.cols` and `out.len()` is
    /// `self.rows * rhs.rows`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut [f64]) {
        assert_eq!(self.cols, rhs.cols, "inner dimension mismatch");
        assert_eq!(out.len(), self.rows * rhs.rows, "output size mismatch");
        let m = rhs.rows;
        const TILE: usize = 16;
        for j0 in (0..m).step_by(TILE) {
            let j1 = (j0 + TILE).min(m);
            for i in 0..self.rows {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                for j in j0..j1 {
                    let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                    out[i * m + j] = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                }
            }
        }
    }

    /// Allocating convenience wrapper over [`Matrix::matmul_into`].
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = vec![0.0; self.rows * rhs.cols];
        self.matmul_into(rhs, &mut out);
        Matrix::from_flat(self.rows, rhs.cols, out)
    }

    /// `self += k · (a ⊗ b)` — rank-one update used by SGD.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, k: f64, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows, "outer-product rows mismatch");
        assert_eq!(b.len(), self.cols, "outer-product cols mismatch");
        for (r, &ar) in a.iter().enumerate() {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (m, &bc) in row.iter_mut().zip(b) {
                *m += k * ar * bc;
            }
        }
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot-product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.5], &[3.0, 1.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
        // Stability at extremes.
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn random_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random(5, 5, 0.3, &mut rng);
        for r in 0..5 {
            for c in 0..5 {
                assert!(m.get(r, c).abs() <= 0.3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matrix rows must be non-empty")]
    fn from_rows_rejects_zero_width() {
        // Used to silently infer rows = 0 via checked_div(..).unwrap_or(0).
        let _ = Matrix::from_rows(vec![vec![], vec![]]);
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = Matrix::random(7, 5, 1.0, &mut rng);
        let x: Vec<f64> = (0..5).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mut out = vec![0.0; 7];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, m.matvec(&x));
        let y: Vec<f64> = (0..7).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mut out_t = vec![0.0; 5];
        m.matvec_t_into(&y, &mut out_t);
        assert_eq!(out_t, m.matvec_t(&y));
    }

    /// The blocked kernels must be *bit-identical* to per-row matvec folds —
    /// this is what lets batched inference reproduce scalar results exactly.
    #[test]
    fn matmul_kernels_are_bit_identical_to_matvec() {
        let mut rng = StdRng::seed_from_u64(42);
        // Sizes past the 16-wide tile to exercise the tile edges.
        let a = Matrix::random(37, 21, 1.0, &mut rng);
        let b = Matrix::random(21, 19, 1.0, &mut rng);
        let prod = a.matmul(&b);
        let bt = b.transposed();
        let mut prod_nt = vec![0.0; 37 * 19];
        a.matmul_nt_into(&bt, &mut prod_nt);
        for i in 0..37 {
            let row = a.row(i);
            let col_prod = bt
                .data()
                .chunks(21)
                .map(|w| dot(row, w))
                .collect::<Vec<_>>();
            for j in 0..19 {
                assert_eq!(prod.get(i, j).to_bits(), col_prod[j].to_bits());
                assert_eq!(prod_nt[i * 19 + j].to_bits(), col_prod[j].to_bits());
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::random(4, 6, 1.0, &mut rng);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(5, 3), m.get(3, 5));
    }
}
