//! HPC time-series datasets for detector training (the paper's Fig. 1
//! setup: "67 ransomware programs from various open-source repositories"
//! versus benign programs, measured through hardware performance counters).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valkyrie_hpc::{HpcEvent, Signature, EVENT_COUNT};

/// A flat per-measurement dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature vectors, one per measurement.
    pub features: Vec<Vec<f64>>,
    /// Binary labels (1.0 = malicious).
    pub labels: Vec<f64>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

/// A sequence dataset: one label per HPC time series.
#[derive(Debug, Clone, Default)]
pub struct SequenceDataset {
    /// Per-program measurement sequences (`[time][feature]`).
    pub sequences: Vec<Vec<Vec<f64>>>,
    /// Binary labels (1.0 = malicious).
    pub labels: Vec<f64>,
}

impl SequenceDataset {
    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True when the dataset holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Flattens into a per-measurement [`Dataset`] (labels repeated).
    pub fn flatten(&self) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (seq, &label) in self.sequences.iter().zip(&self.labels) {
            for x in seq {
                features.push(x.clone());
                labels.push(label);
            }
        }
        Dataset { features, labels }
    }

    /// Splits into `(train, test)` by sequence, using a deterministic
    /// index hash so the assignment cannot resonate with any periodic
    /// structure in the corpus (e.g. benign programs cycling through
    /// signature families).
    pub fn split(&self, train_fraction: f64) -> (SequenceDataset, SequenceDataset) {
        let mut train = SequenceDataset::default();
        let mut test = SequenceDataset::default();
        let cut = (train_fraction.clamp(0.05, 0.95) * 100.0) as u64;
        for (i, (seq, &label)) in self.sequences.iter().zip(&self.labels).enumerate() {
            let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            if h % 100 < cut {
                train.sequences.push(seq.clone());
                train.labels.push(label);
            } else {
                test.sequences.push(seq.clone());
                test.labels.push(label);
            }
        }
        (train, test)
    }
}

/// Per-feature standardiser (z-score), fit on training data.
///
/// HPC counts span many orders of magnitude; every model in this crate is
/// trained on standardised features.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::Standardizer;
/// let s = Standardizer::fit(&[vec![0.0, 10.0], vec![2.0, 30.0]]);
/// let t = s.transform(&[1.0, 20.0]);
/// assert!(t.iter().all(|v| v.abs() < 1e-9)); // the mean maps to 0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits per-feature mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn fit(xs: &[Vec<f64>]) -> Self {
        assert!(!xs.is_empty(), "cannot fit a standardizer on no data");
        let dim = xs[0].len();
        let n = xs.len() as f64;
        let mut mean = vec![0.0; dim];
        for x in xs {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut var = vec![0.0; dim];
        for x in xs {
            for ((v, m), xi) in var.iter_mut().zip(&mean).zip(x) {
                let d = xi - m;
                *v += d * d / n;
            }
        }
        let std = var.into_iter().map(|v| v.sqrt().max(1e-9)).collect();
        Self { mean, std }
    }

    /// Standardises one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardises a whole set of vectors.
    pub fn transform_all(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }

    /// Standardises every timestep of every sequence.
    pub fn transform_sequences(&self, seqs: &[Vec<Vec<f64>>]) -> Vec<Vec<Vec<f64>>> {
        seqs.iter().map(|s| self.transform_all(s)).collect()
    }
}

/// Configuration of the generated ransomware-vs-benign corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of ransomware variants (the paper uses 67).
    pub ransomware_variants: usize,
    /// Number of benign programs (the paper's SPEC-2006 suite; we use 77).
    pub benign_programs: usize,
    /// Measurements per program trace.
    pub trace_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            ransomware_variants: 67,
            benign_programs: 77,
            trace_len: 80,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates the ransomware-vs-benign HPC time-series corpus.
///
/// Each ransomware variant perturbs the base ransomware signature
/// (per-variant intensity, burstiness and phase noise); each benign program is
/// drawn from one of the benign signature families with per-program scale.
/// The classes overlap enough that small models show realistic error rates
/// that *shrink with more measurements* (the Fig. 1 premise).
pub fn generate_corpus(config: &CorpusConfig) -> SequenceDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = SequenceDataset::default();

    for v in 0..config.ransomware_variants {
        let intensity = 0.55 + 0.9 * rng.gen::<f64>();
        let sig = Signature::ransomware().scaled(intensity);
        // Real ransomware alternates encryption bursts with quiet phases
        // (directory walks, key exchange) that look benign through the
        // counters — the single-measurement ambiguity Fig. 1 rests on.
        let quiet = Signature::cpu_bound().scaled(intensity);
        let seq = gen_trace_mixed(
            &sig,
            &quiet,
            0.40,
            config.trace_len,
            0.35,
            &mut rng,
            v as u64,
        );
        out.sequences.push(seq);
        out.labels.push(1.0);
    }
    let benign_families = [
        Signature::cpu_bound(),
        Signature::memory_bound(),
        Signature::graphics_bound(),
    ];
    for p in 0..config.benign_programs {
        let base = &benign_families[p % benign_families.len()];
        let scale = 0.5 + rng.gen::<f64>();
        let mut sig = base.clone().scaled(scale);
        // A slice of benign programs is bursty / IO-heavy and genuinely
        // resembles ransomware through the counters (the confusable tail
        // that produces false positives).
        if p % 9 == 0 {
            sig = sig
                .with_event(HpcEvent::PageFaults, 180.0 * scale)
                .with_event(HpcEvent::Stores, 1.0e8 * scale);
        }
        // Every benign program has occasional I/O bursts that resemble
        // ransomware through the counters.
        let bursty = Signature::ransomware().scaled(scale * 0.8);
        let seq = gen_trace_mixed(
            &sig,
            &bursty,
            0.12,
            config.trace_len,
            0.30,
            &mut rng,
            1000 + p as u64,
        );
        out.sequences.push(seq);
        out.labels.push(0.0);
    }
    out
}

/// Like [`gen_trace`] but each epoch draws from `alt` with probability
/// `alt_prob` (phase mixing).
#[allow(clippy::too_many_arguments)]
fn gen_trace_mixed(
    main: &Signature,
    alt: &Signature,
    alt_prob: f64,
    len: usize,
    noise: f64,
    rng: &mut StdRng,
    tag: u64,
) -> Vec<Vec<f64>> {
    let mut seq = Vec::with_capacity(len);
    let mut drift = 1.0_f64;
    for _ in 0..len {
        drift = (drift + (rng.gen::<f64>() - 0.5) * 0.08).clamp(0.6, 1.4);
        let sig = if rng.gen::<f64>() < alt_prob {
            alt
        } else {
            main
        };
        let s = sig.sample(rng, 1.0);
        let mut x = Vec::with_capacity(EVENT_COUNT);
        for v in s.as_features() {
            let jitter = 1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0);
            x.push((v * drift * jitter).max(0.0));
        }
        seq.push(x);
    }
    let _ = tag;
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_expected_shape() {
        let cfg = CorpusConfig {
            ransomware_variants: 10,
            benign_programs: 12,
            trace_len: 16,
            seed: 1,
        };
        let corpus = generate_corpus(&cfg);
        assert_eq!(corpus.len(), 22);
        assert_eq!(corpus.sequences[0].len(), 16);
        assert_eq!(corpus.sequences[0][0].len(), EVENT_COUNT);
        let positives = corpus.labels.iter().filter(|&&l| l == 1.0).count();
        assert_eq!(positives, 10);
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig::default();
        let a = generate_corpus(&cfg);
        let b = generate_corpus(&cfg);
        assert_eq!(a.sequences[0], b.sequences[0]);
    }

    #[test]
    fn split_keeps_both_classes() {
        let corpus = generate_corpus(&CorpusConfig {
            ransomware_variants: 20,
            benign_programs: 20,
            trace_len: 8,
            seed: 2,
        });
        let (train, test) = corpus.split(0.75);
        assert!(!train.is_empty() && !test.is_empty());
        assert!(train.labels.contains(&1.0));
        assert!(train.labels.contains(&0.0));
        assert!(test.labels.contains(&1.0));
        assert!(test.labels.contains(&0.0));
        assert_eq!(train.len() + test.len(), corpus.len());
    }

    #[test]
    fn flatten_repeats_labels() {
        let corpus = generate_corpus(&CorpusConfig {
            ransomware_variants: 2,
            benign_programs: 2,
            trace_len: 5,
            seed: 3,
        });
        let flat = corpus.flatten();
        assert_eq!(flat.len(), 20);
        assert!(!flat.is_empty());
    }

    #[test]
    fn standardizer_round_trip() {
        let xs = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let s = Standardizer::fit(&xs);
        let t = s.transform_all(&xs);
        // Standardised features have ~zero mean and unit variance.
        let mean0: f64 = t.iter().map(|x| x[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-9);
        let var0: f64 = t.iter().map(|x| x[0] * x[0]).sum::<f64>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classes_are_separable_but_overlapping() {
        // A trivial single-feature threshold should do well but not
        // perfectly — that head-room is what Fig. 1 measures.
        let corpus = generate_corpus(&CorpusConfig::default());
        let flat = corpus.flatten();
        // Feature: page faults (index 9) is high for ransomware.
        let mut correct = 0;
        for (x, &y) in flat.features.iter().zip(&flat.labels) {
            let pred = x[9] > 100.0;
            if pred == (y == 1.0) {
                correct += 1;
            }
        }
        let acc = correct as f64 / flat.len() as f64;
        assert!(acc > 0.6, "threshold accuracy {acc} too low");
        assert!(acc < 0.999, "classes should overlap, acc {acc}");
    }
}
