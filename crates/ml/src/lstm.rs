//! A single-layer LSTM binary classifier trained by backpropagation through
//! time — the paper's ransomware detector ("an LSTM neural network \[with\] an
//! input layer of 20 nodes, a hidden layer of 8 nodes, and an output layer
//! with a sigmoid activation function", Section VI-C).

use crate::linalg::{dot, sigmoid, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LSTM architecture and training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmConfig {
    /// Input feature width per timestep.
    pub inputs: usize,
    /// Hidden state width.
    pub hidden: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Full passes over the training set.
    pub epochs: usize,
    /// Gradient-norm clip to keep BPTT stable.
    pub grad_clip: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LstmConfig {
    /// A config with the given widths and sensible defaults.
    pub fn new(inputs: usize, hidden: usize) -> Self {
        Self {
            inputs,
            hidden,
            learning_rate: 0.05,
            epochs: 60,
            grad_clip: 5.0,
            seed: 0x157A,
        }
    }

    /// The paper's ransomware detector: 20 inputs, 8 hidden units.
    pub fn paper_ransomware() -> Self {
        Self::new(20, 8)
    }

    /// Overrides the epoch count.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug, Clone)]
struct Gates {
    w: Matrix, // hidden × inputs
    u: Matrix, // hidden × hidden
    b: Vec<f64>,
}

impl Gates {
    fn random(h: usize, d: usize, rng: &mut StdRng) -> Self {
        let scale = (1.0 / (d + h) as f64).sqrt();
        Self {
            w: Matrix::random(h, d, scale, rng),
            u: Matrix::random(h, h, scale, rng),
            b: vec![0.0; h],
        }
    }

    fn pre_activation(&self, x: &[f64], h: &[f64]) -> Vec<f64> {
        let mut z = self.w.matvec(x);
        let uh = self.u.matvec(h);
        for ((zi, ui), bi) in z.iter_mut().zip(&uh).zip(&self.b) {
            *zi += ui + bi;
        }
        z
    }
}

/// Inference-layout weights: the four gates' input/recurrent matrices
/// stacked `[i|f|o|g]` along the output axis and stored *transposed*
/// (`inputs × 4·hidden`), so one blocked matmul computes every gate
/// pre-activation for a whole batch with unit-stride access.
#[derive(Debug, Clone, Default)]
struct GatePack {
    wxt: Matrix, // inputs × 4·hidden
    uht: Matrix, // hidden × 4·hidden
    b: Vec<f64>, // 4·hidden
}

/// Reusable buffers for the no-cache forward pass. One scratch serves any
/// batch size; buffers grow to the largest batch seen and stay allocated.
#[derive(Debug, Clone, Default)]
pub struct LstmScratch {
    x: Matrix,  // batch × inputs (current timestep)
    z: Matrix,  // batch × 4·hidden (gate pre-activations, then activations)
    uh: Matrix, // batch × 4·hidden (recurrent contribution)
    h: Matrix,  // batch × hidden
    c: Matrix,  // batch × hidden
    order: Vec<usize>,
}

#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c: Vec<f64>,
    h: Vec<f64>,
}

/// A trained LSTM sequence classifier.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::lstm::{Lstm, LstmConfig};
/// // Label = whether the running mean of the single feature is positive.
/// let seqs: Vec<Vec<Vec<f64>>> = (0..20).map(|i| {
///     let v = if i % 2 == 0 { 0.8 } else { -0.8 };
///     (0..6).map(|_| vec![v]).collect()
/// }).collect();
/// let labels: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
/// let lstm = Lstm::train(&LstmConfig::new(1, 4).with_epochs(150), &seqs, &labels);
/// assert!(lstm.predict_proba(&vec![vec![0.8]; 6]) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    config: LstmConfig,
    gi: Gates,
    gf: Gates,
    go: Gates,
    gg: Gates,
    wy: Vec<f64>,
    by: f64,
    pack: GatePack,
}

impl Lstm {
    /// Trains on sequences of feature vectors with one binary label each.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths mismatch, or timestep widths do
    /// not match the configured input width.
    pub fn train(config: &LstmConfig, seqs: &[Vec<Vec<f64>>], labels: &[f64]) -> Self {
        assert!(!seqs.is_empty(), "training set must be non-empty");
        assert_eq!(seqs.len(), labels.len(), "one label per sequence");
        for s in seqs {
            assert!(!s.is_empty(), "sequences must be non-empty");
            assert!(
                s.iter().all(|x| x.len() == config.inputs),
                "timestep width must match config.inputs"
            );
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let d = config.inputs;
        let mut net = Self {
            config: *config,
            gi: Gates::random(h, d, &mut rng),
            gf: Gates::random(h, d, &mut rng),
            go: Gates::random(h, d, &mut rng),
            gg: Gates::random(h, d, &mut rng),
            wy: (0..h).map(|_| (rng.gen::<f64>() - 0.5) * 0.2).collect(),
            by: 0.0,
            pack: GatePack::default(),
        };
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                net.bptt_step(&seqs[idx], labels[idx]);
            }
        }
        net.pack = net.build_pack();
        net
    }

    /// Stacks and transposes the trained gate weights into the inference
    /// layout (see [`GatePack`]). Pure re-arrangement — no arithmetic.
    fn build_pack(&self) -> GatePack {
        let h = self.config.hidden;
        let d = self.config.inputs;
        let mut wxt = Matrix::zeros(d, 4 * h);
        let mut uht = Matrix::zeros(h, 4 * h);
        let mut b = vec![0.0; 4 * h];
        for (gidx, g) in [&self.gi, &self.gf, &self.go, &self.gg].iter().enumerate() {
            for r in 0..h {
                for k in 0..d {
                    *wxt.get_mut(k, gidx * h + r) = g.w.get(r, k);
                }
                for k in 0..h {
                    *uht.get_mut(k, gidx * h + r) = g.u.get(r, k);
                }
                b[gidx * h + r] = g.b[r];
            }
        }
        GatePack { wxt, uht, b }
    }

    /// One no-cache timestep for every row in the scratch batch: gate
    /// pre-activations via the packed matmuls, then the elementwise cell
    /// update. Arithmetic per element is identical to the per-gate
    /// `pre_activation` + activation path of [`Lstm::forward`].
    fn step_batch(&self, scratch: &mut LstmScratch) {
        let h_dim = self.config.hidden;
        let h4 = 4 * h_dim;
        scratch.x.matmul_into(&self.pack.wxt, scratch.z.data_mut());
        scratch.h.matmul_into(&self.pack.uht, scratch.uh.data_mut());
        let n = scratch.x.rows();
        let b = &self.pack.b;
        let z = scratch.z.data_mut();
        let uh = scratch.uh.data();
        for r in 0..n {
            let z = &mut z[r * h4..(r + 1) * h4];
            let uh = &uh[r * h4..(r + 1) * h4];
            for ((zi, &ui), &bi) in z.iter_mut().zip(uh).zip(b) {
                *zi += ui + bi;
            }
            // [i|f|o] gates are sigmoids, [g] is tanh.
            for zi in z[..3 * h_dim].iter_mut() {
                *zi = sigmoid(*zi);
            }
            for zi in z[3 * h_dim..].iter_mut() {
                *zi = zi.tanh();
            }
            let c = &mut scratch.c.data_mut()[r * h_dim..(r + 1) * h_dim];
            let h = &mut scratch.h.data_mut()[r * h_dim..(r + 1) * h_dim];
            for k in 0..h_dim {
                c[k] = z[h_dim + k] * c[k] + z[k] * z[3 * h_dim + k];
                h[k] = z[2 * h_dim + k] * c[k].tanh();
            }
        }
    }

    /// Probability that the sequence belongs to the positive class, using
    /// the hidden state after the final timestep.
    ///
    /// Runs the allocation-free no-cache forward (no `StepCache`, no
    /// per-step clones); a small scratch is allocated per call — use
    /// [`Lstm::predict_proba_with`] on hot paths to reuse one.
    pub fn predict_proba(&self, seq: &[Vec<f64>]) -> f64 {
        let mut scratch = LstmScratch::default();
        self.predict_proba_with(seq, &mut scratch)
    }

    /// [`Lstm::predict_proba`] with a caller-owned scratch (no allocation
    /// once the scratch has warmed up).
    pub fn predict_proba_with(&self, seq: &[Vec<f64>], scratch: &mut LstmScratch) -> f64 {
        let h_dim = self.config.hidden;
        scratch.h.reset(1, h_dim);
        scratch.c.reset(1, h_dim);
        scratch.x.reset(1, self.config.inputs);
        scratch.z.reset(1, 4 * h_dim);
        scratch.uh.reset(1, 4 * h_dim);
        for x in seq {
            scratch.x.data_mut().copy_from_slice(x);
            self.step_batch(scratch);
        }
        sigmoid(dot(&self.wy, scratch.h.row(0)) + self.by)
    }

    /// Scores a whole batch of sequences (one probability per sequence).
    ///
    /// Sequences are grouped by length and each group advances through the
    /// packed matmuls as one `(group × features)` matrix per timestep;
    /// every output is bit-identical to [`Lstm::predict_proba`] on the
    /// same sequence (property-pinned).
    pub fn predict_batch(&self, seqs: &[Vec<Vec<f64>>]) -> Vec<f64> {
        let mut scratch = LstmScratch::default();
        let mut out = Vec::new();
        self.predict_batch_with(seqs, &mut scratch, &mut out);
        out
    }

    /// [`Lstm::predict_batch`] with caller-owned scratch and output buffers.
    pub fn predict_batch_with(
        &self,
        seqs: &[Vec<Vec<f64>>],
        scratch: &mut LstmScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(seqs.len(), 0.0);
        let mut order = std::mem::take(&mut scratch.order);
        order.clear();
        order.extend(0..seqs.len());
        order.sort_by_key(|&i| seqs[i].len());
        let mut start = 0;
        while start < order.len() {
            let len = seqs[order[start]].len();
            let mut end = start + 1;
            while end < order.len() && seqs[order[end]].len() == len {
                end += 1;
            }
            self.forward_group(seqs, &order[start..end], len, scratch, out);
            start = end;
        }
        scratch.order = order;
    }

    /// Batched no-cache forward over same-length sequences; writes
    /// `out[id]` for every id in the group.
    fn forward_group(
        &self,
        seqs: &[Vec<Vec<f64>>],
        ids: &[usize],
        len: usize,
        scratch: &mut LstmScratch,
        out: &mut [f64],
    ) {
        let n = ids.len();
        let d = self.config.inputs;
        let h_dim = self.config.hidden;
        scratch.h.reset(n, h_dim);
        scratch.c.reset(n, h_dim);
        scratch.x.reset(n, d);
        scratch.z.reset(n, 4 * h_dim);
        scratch.uh.reset(n, 4 * h_dim);
        #[allow(clippy::needless_range_loop)]
        for t in 0..len {
            for (row, &id) in ids.iter().enumerate() {
                scratch.x.data_mut()[row * d..(row + 1) * d].copy_from_slice(&seqs[id][t]);
            }
            self.step_batch(scratch);
        }
        for (row, &id) in ids.iter().enumerate() {
            out[id] = sigmoid(dot(&self.wy, scratch.h.row(row)) + self.by);
        }
    }

    /// Hard decision at the 0.5 threshold.
    pub fn classify(&self, seq: &[Vec<f64>]) -> bool {
        self.predict_proba(seq) >= 0.5
    }

    /// The architecture in use.
    pub fn config(&self) -> &LstmConfig {
        &self.config
    }

    fn forward(&self, seq: &[Vec<f64>]) -> Vec<StepCache> {
        let h_dim = self.config.hidden;
        let mut h = vec![0.0; h_dim];
        let mut c = vec![0.0; h_dim];
        let mut caches = Vec::with_capacity(seq.len());
        for x in seq {
            let i: Vec<f64> = self
                .gi
                .pre_activation(x, &h)
                .into_iter()
                .map(sigmoid)
                .collect();
            let f: Vec<f64> = self
                .gf
                .pre_activation(x, &h)
                .into_iter()
                .map(sigmoid)
                .collect();
            let o: Vec<f64> = self
                .go
                .pre_activation(x, &h)
                .into_iter()
                .map(sigmoid)
                .collect();
            let g: Vec<f64> = self
                .gg
                .pre_activation(x, &h)
                .into_iter()
                .map(f64::tanh)
                .collect();
            let mut c_new = vec![0.0; h_dim];
            for k in 0..h_dim {
                c_new[k] = f[k] * c[k] + i[k] * g[k];
            }
            let mut h_new = vec![0.0; h_dim];
            for k in 0..h_dim {
                h_new[k] = o[k] * c_new[k].tanh();
            }
            caches.push(StepCache {
                x: x.clone(),
                i,
                f,
                o,
                g,
                c: c_new.clone(),
                h: h_new.clone(),
            });
            h = h_new;
            c = c_new;
        }
        caches
    }

    #[allow(clippy::needless_range_loop)]
    fn bptt_step(&mut self, seq: &[Vec<f64>], y: f64) {
        let h_dim = self.config.hidden;
        let lr = self.config.learning_rate;
        let clip = self.config.grad_clip;
        let caches = self.forward(seq);
        let h_last = &caches.last().expect("non-empty sequence").h;
        let p = sigmoid(dot(&self.wy, h_last) + self.by);
        let dlogit = p - y;

        // Output layer gradients.
        let mut dh: Vec<f64> = self.wy.iter().map(|w| w * dlogit).collect();
        for k in 0..h_dim {
            self.wy[k] -= lr * clamp(dlogit * h_last[k], clip);
        }
        self.by -= lr * clamp(dlogit, clip);

        let mut dc = vec![0.0; h_dim];
        for t in (0..caches.len()).rev() {
            let cache = &caches[t];
            let c_prev: Vec<f64> = if t == 0 {
                vec![0.0; h_dim]
            } else {
                caches[t - 1].c.clone()
            };
            let h_prev: Vec<f64> = if t == 0 {
                vec![0.0; h_dim]
            } else {
                caches[t - 1].h.clone()
            };

            let mut da_i = vec![0.0; h_dim];
            let mut da_f = vec![0.0; h_dim];
            let mut da_o = vec![0.0; h_dim];
            let mut da_g = vec![0.0; h_dim];
            let mut dc_prev = vec![0.0; h_dim];
            for k in 0..h_dim {
                let tanh_c = cache.c[k].tanh();
                let do_k = dh[k] * tanh_c;
                let dct = dc[k] + dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c);
                let di_k = dct * cache.g[k];
                let df_k = dct * c_prev[k];
                let dg_k = dct * cache.i[k];
                dc_prev[k] = dct * cache.f[k];
                da_i[k] = clamp(di_k * cache.i[k] * (1.0 - cache.i[k]), clip);
                da_f[k] = clamp(df_k * cache.f[k] * (1.0 - cache.f[k]), clip);
                da_o[k] = clamp(do_k * cache.o[k] * (1.0 - cache.o[k]), clip);
                da_g[k] = clamp(dg_k * (1.0 - cache.g[k] * cache.g[k]), clip);
            }

            // Upstream dh for t-1 via the recurrent weights.
            let mut dh_prev = self.gi.u.matvec_t(&da_i);
            for (a, b) in dh_prev.iter_mut().zip(self.gf.u.matvec_t(&da_f)) {
                *a += b;
            }
            for (a, b) in dh_prev.iter_mut().zip(self.go.u.matvec_t(&da_o)) {
                *a += b;
            }
            for (a, b) in dh_prev.iter_mut().zip(self.gg.u.matvec_t(&da_g)) {
                *a += b;
            }

            // Parameter updates.
            for (gates, da) in [
                (&mut self.gi, &da_i),
                (&mut self.gf, &da_f),
                (&mut self.go, &da_o),
                (&mut self.gg, &da_g),
            ] {
                gates.w.add_outer(-lr, da, &cache.x);
                gates.u.add_outer(-lr, da, &h_prev);
                for (b, d) in gates.b.iter_mut().zip(da.iter()) {
                    *b -= lr * d;
                }
            }

            dh = dh_prev;
            dc = dc_prev;
        }
    }
}

fn clamp(x: f64, limit: f64) -> f64 {
    x.clamp(-limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sign_sequences(n: usize, len: usize, seed: u64) -> (Vec<Vec<Vec<f64>>>, Vec<f64>) {
        // Positive sequences hover around +0.7, negative around -0.7.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let center = if label == 1 { 0.7 } else { -0.7 };
            let seq = (0..len)
                .map(|_| vec![center + (rng.gen::<f64>() - 0.5) * 0.4])
                .collect();
            seqs.push(seq);
            labels.push(label as f64);
        }
        (seqs, labels)
    }

    #[test]
    fn learns_sequence_polarity() {
        let (seqs, labels) = sign_sequences(60, 8, 4);
        let lstm = Lstm::train(&LstmConfig::new(1, 4).with_epochs(80), &seqs, &labels);
        let acc = seqs
            .iter()
            .zip(&labels)
            .filter(|(s, &y)| lstm.classify(s) == (y == 1.0))
            .count() as f64
            / seqs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn longer_prefix_improves_confidence() {
        // The paper's key premise: more measurements → better inference.
        let (seqs, labels) = sign_sequences(60, 12, 8);
        let lstm = Lstm::train(&LstmConfig::new(1, 4).with_epochs(80), &seqs, &labels);
        let pos_seq = &seqs[1];
        assert_eq!(labels[1], 1.0);
        let p_short = lstm.predict_proba(&pos_seq[..2]);
        let p_long = lstm.predict_proba(pos_seq);
        assert!(
            p_long >= p_short - 0.05,
            "confidence should not collapse with more data: {p_short} vs {p_long}"
        );
        assert!(p_long > 0.5);
    }

    #[test]
    fn paper_architecture_dimensions() {
        let cfg = LstmConfig::paper_ransomware();
        assert_eq!(cfg.inputs, 20);
        assert_eq!(cfg.hidden, 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let (seqs, labels) = sign_sequences(20, 4, 1);
        let a = Lstm::train(&LstmConfig::new(1, 3).with_epochs(10), &seqs, &labels);
        let b = Lstm::train(&LstmConfig::new(1, 3).with_epochs(10), &seqs, &labels);
        assert_eq!(a.predict_proba(&seqs[0]), b.predict_proba(&seqs[0]));
    }

    #[test]
    fn probabilities_bounded() {
        let (seqs, labels) = sign_sequences(20, 4, 2);
        let lstm = Lstm::train(&LstmConfig::new(1, 3).with_epochs(10), &seqs, &labels);
        for s in &seqs {
            let p = lstm.predict_proba(s);
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "one label per sequence")]
    fn mismatched_labels_panic() {
        let _ = Lstm::train(&LstmConfig::new(1, 2), &[vec![vec![0.0]]], &[]);
    }

    /// The no-cache inference path (packed transposed weights, no
    /// `StepCache`, no per-step clones) must be bit-identical to the
    /// training-time cached forward it replaced.
    #[test]
    fn no_cache_forward_is_bit_identical_to_cached_forward() {
        for seed in [1u64, 7, 42] {
            let (seqs, labels) = sign_sequences(24, 6, seed);
            let lstm = Lstm::train(
                &LstmConfig::new(1, 4).with_epochs(15).with_seed(seed),
                &seqs,
                &labels,
            );
            for s in &seqs {
                let caches = lstm.forward(s);
                let h_last = caches
                    .last()
                    .map_or(vec![0.0; lstm.config.hidden], |c| c.h.clone());
                let old = sigmoid(dot(&lstm.wy, &h_last) + lstm.by);
                let new = lstm.predict_proba(s);
                assert_eq!(new.to_bits(), old.to_bits(), "{new:?} vs {old:?}");
            }
        }
    }

    /// Batched prediction groups sequences by length internally; every
    /// output must match the scalar path bit-for-bit, including empty and
    /// mixed-length sequences.
    #[test]
    fn predict_batch_matches_predict_proba_bitwise() {
        let (seqs, labels) = sign_sequences(30, 9, 3);
        let lstm = Lstm::train(&LstmConfig::new(1, 4).with_epochs(15), &seqs, &labels);
        // Mixed lengths: prefixes of every length including zero.
        let mixed: Vec<Vec<Vec<f64>>> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| s[..i % (s.len() + 1)].to_vec())
            .collect();
        let batch = lstm.predict_batch(&mixed);
        assert_eq!(batch.len(), mixed.len());
        for (s, &p) in mixed.iter().zip(&batch) {
            let scalar = lstm.predict_proba(s);
            assert_eq!(p.to_bits(), scalar.to_bits(), "{p:?} vs {scalar:?}");
        }
        // Scratch reuse across differently-sized batches changes nothing.
        let mut scratch = LstmScratch::default();
        let mut out = Vec::new();
        lstm.predict_batch_with(&mixed[..7], &mut scratch, &mut out);
        lstm.predict_batch_with(&mixed, &mut scratch, &mut out);
        for (a, b) in out.iter().zip(&batch) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
