//! A single-layer LSTM binary classifier trained by backpropagation through
//! time — the paper's ransomware detector ("an LSTM neural network \[with\] an
//! input layer of 20 nodes, a hidden layer of 8 nodes, and an output layer
//! with a sigmoid activation function", Section VI-C).

use crate::linalg::{dot, sigmoid, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LSTM architecture and training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmConfig {
    /// Input feature width per timestep.
    pub inputs: usize,
    /// Hidden state width.
    pub hidden: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Full passes over the training set.
    pub epochs: usize,
    /// Gradient-norm clip to keep BPTT stable.
    pub grad_clip: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LstmConfig {
    /// A config with the given widths and sensible defaults.
    pub fn new(inputs: usize, hidden: usize) -> Self {
        Self {
            inputs,
            hidden,
            learning_rate: 0.05,
            epochs: 60,
            grad_clip: 5.0,
            seed: 0x157A,
        }
    }

    /// The paper's ransomware detector: 20 inputs, 8 hidden units.
    pub fn paper_ransomware() -> Self {
        Self::new(20, 8)
    }

    /// Overrides the epoch count.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug, Clone)]
struct Gates {
    w: Matrix, // hidden × inputs
    u: Matrix, // hidden × hidden
    b: Vec<f64>,
}

impl Gates {
    fn random(h: usize, d: usize, rng: &mut StdRng) -> Self {
        let scale = (1.0 / (d + h) as f64).sqrt();
        Self {
            w: Matrix::random(h, d, scale, rng),
            u: Matrix::random(h, h, scale, rng),
            b: vec![0.0; h],
        }
    }

    fn pre_activation(&self, x: &[f64], h: &[f64]) -> Vec<f64> {
        let mut z = self.w.matvec(x);
        let uh = self.u.matvec(h);
        for ((zi, ui), bi) in z.iter_mut().zip(&uh).zip(&self.b) {
            *zi += ui + bi;
        }
        z
    }
}

#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c: Vec<f64>,
    h: Vec<f64>,
}

/// A trained LSTM sequence classifier.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::lstm::{Lstm, LstmConfig};
/// // Label = whether the running mean of the single feature is positive.
/// let seqs: Vec<Vec<Vec<f64>>> = (0..20).map(|i| {
///     let v = if i % 2 == 0 { 0.8 } else { -0.8 };
///     (0..6).map(|_| vec![v]).collect()
/// }).collect();
/// let labels: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
/// let lstm = Lstm::train(&LstmConfig::new(1, 4).with_epochs(150), &seqs, &labels);
/// assert!(lstm.predict_proba(&vec![vec![0.8]; 6]) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    config: LstmConfig,
    gi: Gates,
    gf: Gates,
    go: Gates,
    gg: Gates,
    wy: Vec<f64>,
    by: f64,
}

impl Lstm {
    /// Trains on sequences of feature vectors with one binary label each.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths mismatch, or timestep widths do
    /// not match the configured input width.
    pub fn train(config: &LstmConfig, seqs: &[Vec<Vec<f64>>], labels: &[f64]) -> Self {
        assert!(!seqs.is_empty(), "training set must be non-empty");
        assert_eq!(seqs.len(), labels.len(), "one label per sequence");
        for s in seqs {
            assert!(!s.is_empty(), "sequences must be non-empty");
            assert!(
                s.iter().all(|x| x.len() == config.inputs),
                "timestep width must match config.inputs"
            );
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let d = config.inputs;
        let mut net = Self {
            config: *config,
            gi: Gates::random(h, d, &mut rng),
            gf: Gates::random(h, d, &mut rng),
            go: Gates::random(h, d, &mut rng),
            gg: Gates::random(h, d, &mut rng),
            wy: (0..h).map(|_| (rng.gen::<f64>() - 0.5) * 0.2).collect(),
            by: 0.0,
        };
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                net.bptt_step(&seqs[idx], labels[idx]);
            }
        }
        net
    }

    /// Probability that the sequence belongs to the positive class, using
    /// the hidden state after the final timestep.
    pub fn predict_proba(&self, seq: &[Vec<f64>]) -> f64 {
        let caches = self.forward(seq);
        let h_last = caches
            .last()
            .map_or(vec![0.0; self.config.hidden], |c| c.h.clone());
        sigmoid(dot(&self.wy, &h_last) + self.by)
    }

    /// Hard decision at the 0.5 threshold.
    pub fn classify(&self, seq: &[Vec<f64>]) -> bool {
        self.predict_proba(seq) >= 0.5
    }

    /// The architecture in use.
    pub fn config(&self) -> &LstmConfig {
        &self.config
    }

    fn forward(&self, seq: &[Vec<f64>]) -> Vec<StepCache> {
        let h_dim = self.config.hidden;
        let mut h = vec![0.0; h_dim];
        let mut c = vec![0.0; h_dim];
        let mut caches = Vec::with_capacity(seq.len());
        for x in seq {
            let i: Vec<f64> = self
                .gi
                .pre_activation(x, &h)
                .into_iter()
                .map(sigmoid)
                .collect();
            let f: Vec<f64> = self
                .gf
                .pre_activation(x, &h)
                .into_iter()
                .map(sigmoid)
                .collect();
            let o: Vec<f64> = self
                .go
                .pre_activation(x, &h)
                .into_iter()
                .map(sigmoid)
                .collect();
            let g: Vec<f64> = self
                .gg
                .pre_activation(x, &h)
                .into_iter()
                .map(f64::tanh)
                .collect();
            let mut c_new = vec![0.0; h_dim];
            for k in 0..h_dim {
                c_new[k] = f[k] * c[k] + i[k] * g[k];
            }
            let mut h_new = vec![0.0; h_dim];
            for k in 0..h_dim {
                h_new[k] = o[k] * c_new[k].tanh();
            }
            caches.push(StepCache {
                x: x.clone(),
                i,
                f,
                o,
                g,
                c: c_new.clone(),
                h: h_new.clone(),
            });
            h = h_new;
            c = c_new;
        }
        caches
    }

    #[allow(clippy::needless_range_loop)]
    fn bptt_step(&mut self, seq: &[Vec<f64>], y: f64) {
        let h_dim = self.config.hidden;
        let lr = self.config.learning_rate;
        let clip = self.config.grad_clip;
        let caches = self.forward(seq);
        let h_last = &caches.last().expect("non-empty sequence").h;
        let p = sigmoid(dot(&self.wy, h_last) + self.by);
        let dlogit = p - y;

        // Output layer gradients.
        let mut dh: Vec<f64> = self.wy.iter().map(|w| w * dlogit).collect();
        for k in 0..h_dim {
            self.wy[k] -= lr * clamp(dlogit * h_last[k], clip);
        }
        self.by -= lr * clamp(dlogit, clip);

        let mut dc = vec![0.0; h_dim];
        for t in (0..caches.len()).rev() {
            let cache = &caches[t];
            let c_prev: Vec<f64> = if t == 0 {
                vec![0.0; h_dim]
            } else {
                caches[t - 1].c.clone()
            };
            let h_prev: Vec<f64> = if t == 0 {
                vec![0.0; h_dim]
            } else {
                caches[t - 1].h.clone()
            };

            let mut da_i = vec![0.0; h_dim];
            let mut da_f = vec![0.0; h_dim];
            let mut da_o = vec![0.0; h_dim];
            let mut da_g = vec![0.0; h_dim];
            let mut dc_prev = vec![0.0; h_dim];
            for k in 0..h_dim {
                let tanh_c = cache.c[k].tanh();
                let do_k = dh[k] * tanh_c;
                let dct = dc[k] + dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c);
                let di_k = dct * cache.g[k];
                let df_k = dct * c_prev[k];
                let dg_k = dct * cache.i[k];
                dc_prev[k] = dct * cache.f[k];
                da_i[k] = clamp(di_k * cache.i[k] * (1.0 - cache.i[k]), clip);
                da_f[k] = clamp(df_k * cache.f[k] * (1.0 - cache.f[k]), clip);
                da_o[k] = clamp(do_k * cache.o[k] * (1.0 - cache.o[k]), clip);
                da_g[k] = clamp(dg_k * (1.0 - cache.g[k] * cache.g[k]), clip);
            }

            // Upstream dh for t-1 via the recurrent weights.
            let mut dh_prev = self.gi.u.matvec_t(&da_i);
            for (a, b) in dh_prev.iter_mut().zip(self.gf.u.matvec_t(&da_f)) {
                *a += b;
            }
            for (a, b) in dh_prev.iter_mut().zip(self.go.u.matvec_t(&da_o)) {
                *a += b;
            }
            for (a, b) in dh_prev.iter_mut().zip(self.gg.u.matvec_t(&da_g)) {
                *a += b;
            }

            // Parameter updates.
            for (gates, da) in [
                (&mut self.gi, &da_i),
                (&mut self.gf, &da_f),
                (&mut self.go, &da_o),
                (&mut self.gg, &da_g),
            ] {
                gates.w.add_outer(-lr, da, &cache.x);
                gates.u.add_outer(-lr, da, &h_prev);
                for (b, d) in gates.b.iter_mut().zip(da.iter()) {
                    *b -= lr * d;
                }
            }

            dh = dh_prev;
            dc = dc_prev;
        }
    }
}

fn clamp(x: f64, limit: f64) -> f64 {
    x.clamp(-limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sign_sequences(n: usize, len: usize, seed: u64) -> (Vec<Vec<Vec<f64>>>, Vec<f64>) {
        // Positive sequences hover around +0.7, negative around -0.7.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let center = if label == 1 { 0.7 } else { -0.7 };
            let seq = (0..len)
                .map(|_| vec![center + (rng.gen::<f64>() - 0.5) * 0.4])
                .collect();
            seqs.push(seq);
            labels.push(label as f64);
        }
        (seqs, labels)
    }

    #[test]
    fn learns_sequence_polarity() {
        let (seqs, labels) = sign_sequences(60, 8, 4);
        let lstm = Lstm::train(&LstmConfig::new(1, 4).with_epochs(80), &seqs, &labels);
        let acc = seqs
            .iter()
            .zip(&labels)
            .filter(|(s, &y)| lstm.classify(s) == (y == 1.0))
            .count() as f64
            / seqs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn longer_prefix_improves_confidence() {
        // The paper's key premise: more measurements → better inference.
        let (seqs, labels) = sign_sequences(60, 12, 8);
        let lstm = Lstm::train(&LstmConfig::new(1, 4).with_epochs(80), &seqs, &labels);
        let pos_seq = &seqs[1];
        assert_eq!(labels[1], 1.0);
        let p_short = lstm.predict_proba(&pos_seq[..2]);
        let p_long = lstm.predict_proba(pos_seq);
        assert!(
            p_long >= p_short - 0.05,
            "confidence should not collapse with more data: {p_short} vs {p_long}"
        );
        assert!(p_long > 0.5);
    }

    #[test]
    fn paper_architecture_dimensions() {
        let cfg = LstmConfig::paper_ransomware();
        assert_eq!(cfg.inputs, 20);
        assert_eq!(cfg.hidden, 8);
    }

    #[test]
    fn deterministic_given_seed() {
        let (seqs, labels) = sign_sequences(20, 4, 1);
        let a = Lstm::train(&LstmConfig::new(1, 3).with_epochs(10), &seqs, &labels);
        let b = Lstm::train(&LstmConfig::new(1, 3).with_epochs(10), &seqs, &labels);
        assert_eq!(a.predict_proba(&seqs[0]), b.predict_proba(&seqs[0]));
    }

    #[test]
    fn probabilities_bounded() {
        let (seqs, labels) = sign_sequences(20, 4, 2);
        let lstm = Lstm::train(&LstmConfig::new(1, 3).with_epochs(10), &seqs, &labels);
        for s in &seqs {
            let p = lstm.predict_proba(s);
            assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "one label per sequence")]
    fn mismatched_labels_panic() {
        let _ = Lstm::train(&LstmConfig::new(1, 2), &[vec![vec![0.0]]], &[]);
    }
}
