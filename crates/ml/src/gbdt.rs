//! Gradient-boosted decision trees on the logistic loss — the
//! "XGBoost ensemble" detector of Fig. 1.
//!
//! Implements second-order boosting exactly as XGBoost does for binary
//! classification: each round fits a regression tree to the gradient /
//! hessian pairs `g_i = p_i − y_i`, `h_i = p_i (1 − p_i)`, with split gain
//! `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)` and leaf weight `−G/(H+λ)`.

use crate::linalg::sigmoid;
use crate::BinaryClassifier;

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub eta: f64,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum summed hessian per leaf (min_child_weight).
    pub min_child_weight: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            rounds: 30,
            max_depth: 3,
            eta: 0.3,
            lambda: 1.0,
            min_child_weight: 1e-3,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf(w) => *w,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] < *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A trained gradient-boosted tree ensemble.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::gbdt::{Gbdt, GbdtConfig};
/// use valkyrie_ml::BinaryClassifier;
/// let xs = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
/// let ys = vec![0.0, 0.0, 1.0, 1.0];
/// let model = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
/// assert!(model.classify(&[0.9]));
/// assert!(!model.classify(&[0.1]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    trees: Vec<Node>,
    eta: f64,
    base_score: f64,
}

impl Gbdt {
    /// Trains the ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or lengths mismatch.
    pub fn train(config: &GbdtConfig, xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert!(!xs.is_empty(), "training set must be non-empty");
        assert_eq!(xs.len(), ys.len(), "one label per sample");
        let base_score = 0.0; // logit of 0.5
        let mut margins = vec![base_score; xs.len()];
        let mut trees = Vec::with_capacity(config.rounds);
        let idx_all: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..config.rounds {
            let mut grad = vec![0.0; xs.len()];
            let mut hess = vec![0.0; xs.len()];
            for i in 0..xs.len() {
                let p = sigmoid(margins[i]);
                grad[i] = p - ys[i];
                hess[i] = (p * (1.0 - p)).max(1e-12);
            }
            let tree = build_tree(config, xs, &grad, &hess, &idx_all, config.max_depth);
            for (i, x) in xs.iter().enumerate() {
                margins[i] += config.eta * tree.predict(x);
            }
            trees.push(tree);
        }
        Self {
            trees,
            eta: config.eta,
            base_score,
        }
    }

    /// Raw additive margin (log-odds).
    pub fn margin(&self, x: &[f64]) -> f64 {
        self.base_score + self.eta * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the ensemble has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Maximum depth across trees (for tests/inspection).
    pub fn max_tree_depth(&self) -> usize {
        self.trees.iter().map(Node::depth).max().unwrap_or(0)
    }
}

impl BinaryClassifier for Gbdt {
    fn score(&self, x: &[f64]) -> f64 {
        sigmoid(self.margin(x))
    }
}

fn build_tree(
    config: &GbdtConfig,
    xs: &[Vec<f64>],
    grad: &[f64],
    hess: &[f64],
    idx: &[usize],
    depth_left: usize,
) -> Node {
    let g_sum: f64 = idx.iter().map(|&i| grad[i]).sum();
    let h_sum: f64 = idx.iter().map(|&i| hess[i]).sum();
    let leaf = || Node::Leaf(-g_sum / (h_sum + config.lambda));
    if depth_left == 0 || idx.len() < 2 {
        return leaf();
    }

    let dim = xs[0].len();
    let parent_score = g_sum * g_sum / (h_sum + config.lambda);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
                                                    // `f` indexes a feature *column* across the row-major sample matrix;
                                                    // there is no column iterator to borrow, so the index loop stays.
    #[allow(clippy::needless_range_loop)]
    for f in 0..dim {
        let mut sorted: Vec<usize> = idx.to_vec();
        sorted.sort_by(|&a, &b| {
            xs[a][f]
                .partial_cmp(&xs[b][f])
                .expect("features are finite")
        });
        let mut gl = 0.0;
        let mut hl = 0.0;
        for w in 0..sorted.len() - 1 {
            let i = sorted[w];
            gl += grad[i];
            hl += hess[i];
            let (gr, hr) = (g_sum - gl, h_sum - hl);
            // Skip ties: can't split between equal feature values.
            if xs[sorted[w]][f] == xs[sorted[w + 1]][f] {
                continue;
            }
            if hl < config.min_child_weight || hr < config.min_child_weight {
                continue;
            }
            let gain =
                gl * gl / (hl + config.lambda) + gr * gr / (hr + config.lambda) - parent_score;
            if best.is_none_or(|(bg, _, _)| gain > bg) && gain > 1e-9 {
                let threshold = 0.5 * (xs[sorted[w]][f] + xs[sorted[w + 1]][f]);
                best = Some((gain, f, threshold));
            }
        }
    }

    match best {
        None => leaf(),
        Some((_, feature, threshold)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| xs[i][feature] < threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return leaf();
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build_tree(
                    config,
                    xs,
                    grad,
                    hess,
                    &left_idx,
                    depth_left - 1,
                )),
                right: Box::new(build_tree(
                    config,
                    xs,
                    grad,
                    hess,
                    &right_idx,
                    depth_left - 1,
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn xor_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // XOR is not linearly separable — trees should still learn it.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let a = rng.gen::<bool>();
            let b = rng.gen::<bool>();
            let mut x = vec![a as i32 as f64, b as i32 as f64];
            x[0] += rng.gen::<f64>() * 0.2 - 0.1;
            x[1] += rng.gen::<f64>() * 0.2 - 0.1;
            xs.push(x);
            ys.push((a ^ b) as i32 as f64);
        }
        (xs, ys)
    }

    #[test]
    fn learns_xor() {
        let (xs, ys) = xor_data();
        let model = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.classify(x) == (y == 1.0))
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn respects_max_depth() {
        let (xs, ys) = xor_data();
        let model = Gbdt::train(
            &GbdtConfig {
                max_depth: 2,
                ..GbdtConfig::default()
            },
            &xs,
            &ys,
        );
        assert!(model.max_tree_depth() <= 2);
        assert_eq!(model.len(), 30);
    }

    #[test]
    fn pure_leaf_when_no_split_gains() {
        // Constant features: no split possible, model predicts the prior.
        let xs = vec![vec![1.0]; 10];
        let ys = vec![1.0; 10];
        let model = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        assert!(model.score(&[1.0]) > 0.9);
    }

    #[test]
    fn margin_is_monotone_in_rounds() {
        let (xs, ys) = xor_data();
        let small = Gbdt::train(
            &GbdtConfig {
                rounds: 2,
                ..GbdtConfig::default()
            },
            &xs,
            &ys,
        );
        let large = Gbdt::train(
            &GbdtConfig {
                rounds: 40,
                ..GbdtConfig::default()
            },
            &xs,
            &ys,
        );
        // More rounds should fit the training data at least as well.
        let acc = |m: &Gbdt| {
            xs.iter()
                .zip(&ys)
                .filter(|(x, &y)| m.classify(x) == (y == 1.0))
                .count()
        };
        assert!(acc(&large) >= acc(&small));
    }

    #[test]
    fn deterministic() {
        let (xs, ys) = xor_data();
        let a = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        let b = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        assert_eq!(a, b);
    }
}
