//! Gradient-boosted decision trees on the logistic loss — the
//! "XGBoost ensemble" detector of Fig. 1.
//!
//! Implements second-order boosting exactly as XGBoost does for binary
//! classification: each round fits a regression tree to the gradient /
//! hessian pairs `g_i = p_i − y_i`, `h_i = p_i (1 − p_i)`, with split gain
//! `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)` and leaf weight `−G/(H+λ)`.

use crate::linalg::sigmoid;
use crate::parallel::{host_workers, map_indexed};
use crate::BinaryClassifier;

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub eta: f64,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum summed hessian per leaf (min_child_weight).
    pub min_child_weight: f64,
    /// Scoped-thread workers for the per-feature split scan; `0` means
    /// "all host cores". The trained model is identical for every setting —
    /// candidate splits are reduced in feature order either way.
    pub workers: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            rounds: 30,
            max_depth: 3,
            eta: 0.3,
            lambda: 1.0,
            min_child_weight: 1e-3,
            workers: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut node = self;
        loop {
            match node {
                Node::Leaf(w) => return *w,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] < *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A trained gradient-boosted tree ensemble.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::gbdt::{Gbdt, GbdtConfig};
/// use valkyrie_ml::BinaryClassifier;
/// let xs = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
/// let ys = vec![0.0, 0.0, 1.0, 1.0];
/// let model = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
/// assert!(model.classify(&[0.9]));
/// assert!(!model.classify(&[0.1]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    trees: Vec<Node>,
    eta: f64,
    base_score: f64,
}

impl Gbdt {
    /// Trains the ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or lengths mismatch.
    pub fn train(config: &GbdtConfig, xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert!(!xs.is_empty(), "training set must be non-empty");
        assert_eq!(xs.len(), ys.len(), "one label per sample");
        let n = xs.len();
        let dim = xs[0].len();
        let workers = if config.workers == 0 {
            host_workers()
        } else {
            config.workers
        };
        // Features never change across boosting rounds, so each feature
        // column is sorted exactly once per train — tree nodes filter these
        // lists instead of re-sorting at every node. A stable sort keeps
        // tied values in index order, matching the per-node stable sorts
        // the builder used to run (a filtered stable-sorted list *is* the
        // stable-sorted filtered list), so split scans see bit-identical
        // accumulation order.
        let sorted_root: Vec<Vec<u32>> = map_indexed(dim, workers, |f| {
            let mut v: Vec<u32> = (0..n as u32).collect();
            v.sort_by(|&a, &b| {
                xs[a as usize][f]
                    .partial_cmp(&xs[b as usize][f])
                    .expect("features are finite")
            });
            v
        });
        let mut builder = TreeBuilder {
            config,
            xs,
            grad: Vec::new(),
            hess: Vec::new(),
            workers,
        };
        let base_score = 0.0; // logit of 0.5
        let mut margins = vec![base_score; n];
        let mut trees = Vec::with_capacity(config.rounds);
        let idx_all: Vec<u32> = (0..n as u32).collect();
        let mut in_left = vec![false; n];
        for _ in 0..config.rounds {
            builder.grad.clear();
            builder.hess.clear();
            for i in 0..n {
                let p = sigmoid(margins[i]);
                builder.grad.push(p - ys[i]);
                builder.hess.push((p * (1.0 - p)).max(1e-12));
            }
            let tree = builder.build(&idx_all, &sorted_root, config.max_depth, &mut in_left);
            for (i, x) in xs.iter().enumerate() {
                margins[i] += config.eta * tree.predict(x);
            }
            trees.push(tree);
        }
        Self {
            trees,
            eta: config.eta,
            base_score,
        }
    }

    /// Raw additive margin (log-odds).
    pub fn margin(&self, x: &[f64]) -> f64 {
        self.base_score + self.eta * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Margins for a whole batch, written into a caller-owned buffer.
    ///
    /// Walks trees in the outer loop (each tree stays hot across the batch);
    /// per-sample accumulation runs in tree order, so every margin is
    /// bit-identical to [`Gbdt::margin`].
    pub fn margin_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        out.resize(xs.len(), 0.0);
        for t in &self.trees {
            for (o, x) in out.iter_mut().zip(xs) {
                *o += t.predict(x);
            }
        }
        for o in out.iter_mut() {
            *o = self.base_score + self.eta * *o;
        }
    }

    /// Positive-class probabilities for a whole batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::new();
        self.margin_batch_into(xs, &mut out);
        for o in out.iter_mut() {
            *o = sigmoid(*o);
        }
        out
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the ensemble has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Maximum depth across trees (for tests/inspection).
    pub fn max_tree_depth(&self) -> usize {
        self.trees.iter().map(Node::depth).max().unwrap_or(0)
    }
}

impl BinaryClassifier for Gbdt {
    fn score(&self, x: &[f64]) -> f64 {
        sigmoid(self.margin(x))
    }

    fn score_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        self.margin_batch_into(xs, out);
        for o in out.iter_mut() {
            *o = sigmoid(*o);
        }
    }
}

/// Per-train tree-building state: gradients/hessians for the current round
/// plus the worker budget for the split scan. Feature columns arrive
/// presorted from `Gbdt::train` and are filtered (never re-sorted) on the
/// way down the tree.
struct TreeBuilder<'a> {
    config: &'a GbdtConfig,
    xs: &'a [Vec<f64>],
    grad: Vec<f64>,
    hess: Vec<f64>,
    workers: usize,
}

/// Fan out across threads only when the scan is big enough to amortise the
/// spawns (`samples × features` cells).
const PAR_SCAN_CELLS: usize = 4096;

impl TreeBuilder<'_> {
    /// Best split for one feature given its presorted member list:
    /// `(gain, threshold)` of the earliest maximal-gain boundary, exactly
    /// as the sequential scan found it.
    fn best_for_feature(
        &self,
        f: usize,
        sorted_f: &[u32],
        g_sum: f64,
        h_sum: f64,
        parent_score: f64,
    ) -> Option<(f64, f64)> {
        let config = self.config;
        let xs = self.xs;
        let mut best: Option<(f64, f64)> = None;
        let mut gl = 0.0;
        let mut hl = 0.0;
        for w in 0..sorted_f.len() - 1 {
            let i = sorted_f[w] as usize;
            gl += self.grad[i];
            hl += self.hess[i];
            let (gr, hr) = (g_sum - gl, h_sum - hl);
            // Skip ties: can't split between equal feature values.
            if xs[i][f] == xs[sorted_f[w + 1] as usize][f] {
                continue;
            }
            if hl < config.min_child_weight || hr < config.min_child_weight {
                continue;
            }
            let gain =
                gl * gl / (hl + config.lambda) + gr * gr / (hr + config.lambda) - parent_score;
            if best.is_none_or(|(bg, _)| gain > bg) && gain > 1e-9 {
                let threshold = 0.5 * (xs[i][f] + xs[sorted_f[w + 1] as usize][f]);
                best = Some((gain, threshold));
            }
        }
        best
    }

    fn build(
        &self,
        idx: &[u32],
        sorted: &[Vec<u32>],
        depth_left: usize,
        in_left: &mut Vec<bool>,
    ) -> Node {
        let config = self.config;
        let xs = self.xs;
        let g_sum: f64 = idx.iter().map(|&i| self.grad[i as usize]).sum();
        let h_sum: f64 = idx.iter().map(|&i| self.hess[i as usize]).sum();
        let leaf = || Node::Leaf(-g_sum / (h_sum + config.lambda));
        if depth_left == 0 || idx.len() < 2 {
            return leaf();
        }

        let dim = xs[0].len();
        let parent_score = g_sum * g_sum / (h_sum + config.lambda);
        // Each feature's candidate is independent; compute them fanned out,
        // then reduce in ascending feature order with the same
        // strictly-greater rule the sequential loop used, so the earliest
        // feature still wins gain ties and the chosen split is identical.
        let scan_workers = if idx.len() * dim >= PAR_SCAN_CELLS {
            self.workers
        } else {
            1
        };
        let candidates = map_indexed(dim, scan_workers, |f| {
            self.best_for_feature(f, &sorted[f], g_sum, h_sum, parent_score)
        });
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for (f, cand) in candidates.into_iter().enumerate() {
            if let Some((gain, threshold)) = cand {
                if best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, threshold));
                }
            }
        }

        match best {
            None => leaf(),
            Some((_, feature, threshold)) => {
                let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = idx
                    .iter()
                    .partition(|&&i| xs[i as usize][feature] < threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return leaf();
                }
                // Split every presorted column by membership, preserving
                // order — equivalent to re-sorting each child's members.
                for &i in &left_idx {
                    in_left[i as usize] = true;
                }
                let mut left_sorted = Vec::with_capacity(dim);
                let mut right_sorted = Vec::with_capacity(dim);
                for lst in sorted {
                    let (l, r): (Vec<u32>, Vec<u32>) =
                        lst.iter().partition(|&&i| in_left[i as usize]);
                    left_sorted.push(l);
                    right_sorted.push(r);
                }
                for &i in &left_idx {
                    in_left[i as usize] = false;
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(&left_idx, &left_sorted, depth_left - 1, in_left)),
                    right: Box::new(self.build(&right_idx, &right_sorted, depth_left - 1, in_left)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn xor_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // XOR is not linearly separable — trees should still learn it.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let a = rng.gen::<bool>();
            let b = rng.gen::<bool>();
            let mut x = vec![a as i32 as f64, b as i32 as f64];
            x[0] += rng.gen::<f64>() * 0.2 - 0.1;
            x[1] += rng.gen::<f64>() * 0.2 - 0.1;
            xs.push(x);
            ys.push((a ^ b) as i32 as f64);
        }
        (xs, ys)
    }

    #[test]
    fn learns_xor() {
        let (xs, ys) = xor_data();
        let model = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.classify(x) == (y == 1.0))
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn respects_max_depth() {
        let (xs, ys) = xor_data();
        let model = Gbdt::train(
            &GbdtConfig {
                max_depth: 2,
                ..GbdtConfig::default()
            },
            &xs,
            &ys,
        );
        assert!(model.max_tree_depth() <= 2);
        assert_eq!(model.len(), 30);
    }

    #[test]
    fn pure_leaf_when_no_split_gains() {
        // Constant features: no split possible, model predicts the prior.
        let xs = vec![vec![1.0]; 10];
        let ys = vec![1.0; 10];
        let model = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        assert!(model.score(&[1.0]) > 0.9);
    }

    #[test]
    fn margin_is_monotone_in_rounds() {
        let (xs, ys) = xor_data();
        let small = Gbdt::train(
            &GbdtConfig {
                rounds: 2,
                ..GbdtConfig::default()
            },
            &xs,
            &ys,
        );
        let large = Gbdt::train(
            &GbdtConfig {
                rounds: 40,
                ..GbdtConfig::default()
            },
            &xs,
            &ys,
        );
        // More rounds should fit the training data at least as well.
        let acc = |m: &Gbdt| {
            xs.iter()
                .zip(&ys)
                .filter(|(x, &y)| m.classify(x) == (y == 1.0))
                .count()
        };
        assert!(acc(&large) >= acc(&small));
    }

    #[test]
    fn deterministic() {
        let (xs, ys) = xor_data();
        let a = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        let b = Gbdt::train(&GbdtConfig::default(), &xs, &ys);
        assert_eq!(a, b);
    }
}
