//! Binary-classification metrics (the paper's detection-efficacy measures).

/// A binary confusion matrix (positive class = "malicious").
///
/// # Examples
///
/// ```
/// use valkyrie_ml::ConfusionMatrix;
/// let cm = ConfusionMatrix::from_pairs(
///     [(true, true), (true, false), (false, false), (false, false)].iter().copied(),
/// );
/// assert_eq!(cm.tp, 1);
/// assert_eq!(cm.fn_, 1);
/// assert_eq!(cm.tn, 2);
/// assert!((cm.recall() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: u64,
    /// False positives (benign classified malicious).
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives (missed attacks). Named `fn_` because `fn` is a
    /// keyword.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds from `(ground_truth_is_positive, predicted_positive)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (bool, bool)>>(pairs: I) -> Self {
        let mut cm = Self::default();
        for (truth, pred) in pairs {
            cm.record(truth, pred);
        }
        cm
    }

    /// Records one observation.
    pub fn record(&mut self, truth: bool, pred: bool) {
        match (truth, pred) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall / TPR `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1-score — harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate `fp / (fp + tn)`; 0 when undefined.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Accuracy `(tp + tn) / total`; 0 when undefined.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> ConfusionMatrix {
        ConfusionMatrix {
            tp: 8,
            fp: 2,
            tn: 18,
            fn_: 2,
        }
    }

    #[test]
    fn metric_identities() {
        let c = cm();
        assert_eq!(c.total(), 30);
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
        assert!((c.fpr() - 0.1).abs() < 1e-12);
        assert!((c.accuracy() - 26.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let c = ConfusionMatrix::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn perfect_classifier() {
        let c = ConfusionMatrix {
            tp: 10,
            fp: 0,
            tn: 10,
            fn_: 0,
        };
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn f1_is_bounded_by_precision_and_recall() {
        let c = cm();
        let f1 = c.f1();
        assert!(f1 <= c.precision().max(c.recall()) + 1e-12);
        assert!(f1 >= c.precision().min(c.recall()) - 1e-12);
    }

    #[test]
    fn record_accumulates() {
        let mut c = ConfusionMatrix::default();
        c.record(true, true);
        c.record(false, true);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 1);
    }
}
