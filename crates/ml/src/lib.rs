//! From-scratch ML substrate for the Valkyrie detectors.
//!
//! The paper's detectors (Fig. 1, Section VI) are a small ANN (one hidden
//! layer of 4 nodes), a large ANN (two hidden layers of 8), a linear SVM, an
//! XGBoost-style gradient-boosted tree ensemble, and an LSTM (20-in,
//! 8-hidden) for ransomware. All five are implemented here with no external
//! ML dependencies:
//!
//! * [`linalg`] — minimal dense matrix/vector helpers;
//! * [`mlp`] — feed-forward sigmoid networks trained by backprop/SGD;
//! * [`lstm`] — a single-layer LSTM trained by BPTT;
//! * [`svm`] — a linear SVM trained on the hinge loss;
//! * [`gbdt`] — second-order gradient-boosted regression trees on the
//!   logistic loss;
//! * [`metrics`] — confusion-matrix metrics (F1, FPR, …);
//! * [`dataset`] — generated HPC time-series datasets (67 ransomware
//!   variants vs. benign programs) used to train everything.
//!
//! # Examples
//!
//! ```
//! use valkyrie_ml::mlp::{Mlp, MlpConfig};
//! // Linearly separable toy data.
//! let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.1, 0.2], vec![0.9, 1.1]];
//! let ys = vec![0.0, 1.0, 0.0, 1.0];
//! let mlp = Mlp::train(&MlpConfig::new(vec![2, 6, 1]).with_epochs(2000), &xs, &ys);
//! assert!(mlp.predict_proba(&[1.0, 1.0]) > 0.5);
//! ```

pub mod dataset;
pub mod gbdt;
pub mod linalg;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod parallel;
pub mod svm;

pub use dataset::{Dataset, SequenceDataset, Standardizer};
pub use gbdt::{Gbdt, GbdtConfig};
pub use lstm::{Lstm, LstmConfig, LstmScratch};
pub use metrics::ConfusionMatrix;
pub use mlp::{Mlp, MlpConfig, MlpScratch};
pub use svm::{LinearSvm, SvmConfig};

/// A binary classifier over fixed-size feature vectors.
///
/// Implemented by every per-measurement model so detectors can be generic.
pub trait BinaryClassifier {
    /// Probability-like score in `[0, 1]` that `x` is the positive class.
    fn score(&self, x: &[f64]) -> f64;

    /// Hard decision at the 0.5 threshold.
    fn classify(&self, x: &[f64]) -> bool {
        self.score(x) >= 0.5
    }

    /// Scores a whole batch into a caller-owned buffer.
    ///
    /// The default maps [`BinaryClassifier::score`]; models with a matrix
    /// or tree-walk kernel override it with a batched path that is
    /// bit-identical to the scalar one (property-pinned per model).
    fn score_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        out.extend(xs.iter().map(|x| self.score(x)));
    }

    /// Allocating convenience wrapper over
    /// [`BinaryClassifier::score_batch_into`].
    fn score_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::with_capacity(xs.len());
        self.score_batch_into(xs, &mut out);
        out
    }
}
