//! Linear support-vector machine trained on the hinge loss
//! (Pegasos-style SGD) — the per-measurement SVM detector of Fig. 1.

use crate::linalg::dot;
use crate::BinaryClassifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVM training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// L2 regularisation strength λ.
    pub lambda: f64,
    /// Full passes over the training set.
    pub epochs: usize,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            epochs: 60,
            seed: 0x51A0,
        }
    }
}

/// A trained linear SVM `f(x) = w·x + b` with Platt-style logistic scoring.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::svm::{LinearSvm, SvmConfig};
/// let xs = vec![vec![-1.0, -1.0], vec![1.0, 1.0], vec![-0.8, -1.2], vec![1.2, 0.9]];
/// let ys = vec![0.0, 1.0, 0.0, 1.0];
/// // Tiny toy sets need a stronger regulariser than the default.
/// let cfg = SvmConfig { lambda: 0.1, epochs: 200, seed: 1 };
/// let svm = LinearSvm::train(&cfg, &xs, &ys);
/// assert!(svm.decision(&[1.0, 1.0]) > 0.0);
/// assert!(svm.decision(&[-1.0, -1.0]) < 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains with Pegasos SGD: step size `1/(λ·t)`, hinge-loss subgradient.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty, lengths mismatch, or samples have differing
    /// widths.
    pub fn train(config: &SvmConfig, xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert!(!xs.is_empty(), "training set must be non-empty");
        assert_eq!(xs.len(), ys.len(), "one label per sample");
        let dim = xs[0].len();
        assert!(
            xs.iter().all(|x| x.len() == dim),
            "all samples must share a width"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let mut t: u64 = 1;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                let y = if ys[idx] >= 0.5 { 1.0 } else { -1.0 };
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = y * (dot(&w, &xs[idx]) + b);
                for wi in w.iter_mut() {
                    *wi *= 1.0 - eta * config.lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(&xs[idx]) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
                t += 1;
            }
        }
        Self {
            weights: w,
            bias: b,
        }
    }

    /// Signed decision value `w·x + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Decision values for a whole batch into a caller-owned buffer.
    ///
    /// A linear model's per-sample dot is already a unit-stride kernel, so
    /// the batched entry point is the scalar fold per row — it exists for
    /// API symmetry with the other model families and to skip the per-call
    /// `Vec` of mapped iterators.
    pub fn decision_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        out.extend(xs.iter().map(|x| self.decision(x)));
    }

    /// Positive-class probabilities for a whole batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.score(x)).collect()
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl BinaryClassifier for LinearSvm {
    fn score(&self, x: &[f64]) -> f64 {
        crate::linalg::sigmoid(self.decision(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryClassifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let c = if label == 1 { 1.5 } else { -1.5 };
            xs.push(vec![c + rng.gen::<f64>() - 0.5, c + rng.gen::<f64>() - 0.5]);
            ys.push(label as f64);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = blobs(200);
        let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.classify(x) == (y == 1.0))
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn score_is_probability_like() {
        let (xs, ys) = blobs(50);
        let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        for x in &xs {
            let s = svm.score(x);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = blobs(50);
        let a = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        let b = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        let _ = LinearSvm::train(&SvmConfig::default(), &[], &[]);
    }
}
