//! Feed-forward neural networks ("ANNs") trained by backpropagation.
//!
//! The paper's Fig. 1 detectors include a *small ANN* (one hidden layer of 4
//! nodes) and a *large ANN* (two hidden layers of 8 nodes each); both use
//! sigmoid activations and a sigmoid output for binary classification.

use crate::linalg::{sigmoid, Matrix};
use crate::BinaryClassifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MLP architecture and training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Layer sizes including input and output (e.g. `[10, 4, 1]`).
    pub layers: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Full passes over the training set.
    pub epochs: usize,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl MlpConfig {
    /// A config with the given layer sizes and sensible defaults.
    ///
    /// # Panics
    ///
    /// Panics unless at least two layers are given and the output layer has
    /// exactly one unit.
    pub fn new(layers: Vec<usize>) -> Self {
        assert!(layers.len() >= 2, "need at least input and output layers");
        assert_eq!(
            *layers.last().expect("non-empty"),
            1,
            "binary MLP needs a single output unit"
        );
        Self {
            layers,
            learning_rate: 0.1,
            epochs: 200,
            seed: 0x11A9,
        }
    }

    /// The paper's small ANN: one hidden layer of 4 nodes.
    pub fn small_ann(inputs: usize) -> Self {
        Self::new(vec![inputs, 4, 1])
    }

    /// The paper's large ANN: two hidden layers of 8 nodes each.
    pub fn large_ann(inputs: usize) -> Self {
        Self::new(vec![inputs, 8, 8, 1])
    }

    /// Overrides the epoch count.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the learning rate.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained feed-forward network with sigmoid activations.
///
/// # Examples
///
/// ```
/// use valkyrie_ml::mlp::{Mlp, MlpConfig};
/// let xs = vec![vec![0.0], vec![1.0], vec![0.1], vec![0.9]];
/// let ys = vec![0.0, 1.0, 0.0, 1.0];
/// let mlp = Mlp::train(&MlpConfig::new(vec![1, 4, 1]).with_epochs(1500), &xs, &ys);
/// assert!(mlp.predict_proba(&[0.95]) > 0.5);
/// assert!(mlp.predict_proba(&[0.05]) < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
}

/// Reusable buffers for batched MLP inference (two ping-pong activation
/// matrices). One scratch serves any batch size.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    a: Matrix,
    b: Matrix,
}

/// Per-sample training buffers: one activation vector per layer plus the
/// backpropagated delta and its upstream swap partner.
#[derive(Debug, Clone, Default)]
struct TrainScratch {
    acts: Vec<Vec<f64>>,
    delta: Vec<f64>,
    up: Vec<f64>,
}

impl Mlp {
    /// Trains by plain SGD (one sample at a time) on binary cross-entropy.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length, `xs` is empty, or a sample
    /// does not match the configured input width.
    pub fn train(config: &MlpConfig, xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "one label per sample");
        assert!(!xs.is_empty(), "training set must be non-empty");
        assert!(
            xs.iter().all(|x| x.len() == config.layers[0]),
            "sample width must match the input layer"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in config.layers.windows(2) {
            let scale = (1.0 / w[0] as f64).sqrt();
            weights.push(Matrix::random(w[1], w[0], scale, &mut rng));
            biases.push(vec![0.0; w[1]]);
        }
        let mut net = Self { weights, biases };

        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut scratch = TrainScratch::default();
        for _ in 0..config.epochs {
            // Fisher-Yates shuffle for SGD.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                net.sgd_step(&xs[idx], ys[idx], config.learning_rate, &mut scratch);
            }
        }
        net
    }

    /// Forward pass into caller-owned per-layer activation buffers
    /// (input first). Allocation-free once the buffers have warmed up.
    fn forward_into(&self, x: &[f64], acts: &mut Vec<Vec<f64>>) {
        acts.resize(self.weights.len() + 1, Vec::new());
        acts[0].clear();
        acts[0].extend_from_slice(x);
        for l in 0..self.weights.len() {
            let (prev, rest) = acts.split_at_mut(l + 1);
            let z = &mut rest[0];
            z.clear();
            z.resize(self.weights[l].rows(), 0.0);
            self.weights[l].matvec_into(&prev[l], z);
            for (zi, bi) in z.iter_mut().zip(&self.biases[l]) {
                *zi = sigmoid(*zi + bi);
            }
        }
    }

    fn sgd_step(&mut self, x: &[f64], y: f64, lr: f64, scratch: &mut TrainScratch) {
        self.forward_into(x, &mut scratch.acts);
        let out = scratch.acts.last().expect("output layer")[0];
        // δ for sigmoid + cross-entropy output: (p - y).
        scratch.delta.clear();
        scratch.delta.push(out - y);
        for l in (0..self.weights.len()).rev() {
            // Upstream delta is computed from the *pre-update* weights,
            // exactly as before the scratch-reuse refactor.
            let has_upstream = l > 0;
            if has_upstream {
                scratch.up.clear();
                scratch.up.resize(self.weights[l].cols(), 0.0);
                self.weights[l].matvec_t_into(&scratch.delta, &mut scratch.up);
                for (di, ai) in scratch.up.iter_mut().zip(&scratch.acts[l]) {
                    *di *= ai * (1.0 - ai); // sigmoid'
                }
            }
            self.weights[l].add_outer(-lr, &scratch.delta, &scratch.acts[l]);
            for (bi, di) in self.biases[l].iter_mut().zip(&scratch.delta) {
                *bi -= lr * di;
            }
            if has_upstream {
                std::mem::swap(&mut scratch.delta, &mut scratch.up);
            }
        }
    }

    /// Probability that `x` belongs to the positive class.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let mut acts = Vec::new();
        self.forward_into(x, &mut acts);
        acts.last().expect("output layer")[0]
    }

    /// Positive-class probabilities for a whole batch.
    ///
    /// Each layer advances as one `(batch × width)` blocked matmul against
    /// the untransposed weight matrix (`A · Wᵀ`, unit stride on both
    /// operands); outputs are bit-identical to [`Mlp::predict_proba`].
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let mut scratch = MlpScratch::default();
        let mut out = Vec::new();
        self.predict_batch_with(xs, &mut scratch, &mut out);
        out
    }

    /// [`Mlp::predict_batch`] with caller-owned scratch and output buffers.
    pub fn predict_batch_with(
        &self,
        xs: &[Vec<f64>],
        scratch: &mut MlpScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let n = xs.len();
        if n == 0 {
            return;
        }
        let d = self.weights[0].cols();
        scratch.a.reset(n, d);
        for (r, x) in xs.iter().enumerate() {
            scratch.a.data_mut()[r * d..(r + 1) * d].copy_from_slice(x);
        }
        for (w, bias) in self.weights.iter().zip(&self.biases) {
            let m = w.rows();
            scratch.b.reset(n, m);
            scratch.a.matmul_nt_into(w, scratch.b.data_mut());
            for r in 0..n {
                let row = &mut scratch.b.data_mut()[r * m..(r + 1) * m];
                for (zi, bi) in row.iter_mut().zip(bias) {
                    *zi = sigmoid(*zi + bi);
                }
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        out.extend_from_slice(scratch.a.data()); // final layer is batch × 1
    }

    /// Number of weight layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }
}

impl BinaryClassifier for Mlp {
    fn score(&self, x: &[f64]) -> f64 {
        self.predict_proba(x)
    }

    fn score_batch_into(&self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        let mut scratch = MlpScratch::default();
        self.predict_batch_with(xs, &mut scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Two Gaussian-ish blobs in 4-D.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let center = if label == 1 { 1.0 } else { -1.0 };
            let x: Vec<f64> = (0..4).map(|_| center + (rng.gen::<f64>() - 0.5)).collect();
            xs.push(x);
            ys.push(label as f64);
        }
        (xs, ys)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let (xs, ys) = blobs(200, 7);
        let mlp = Mlp::train(&MlpConfig::small_ann(4).with_epochs(300), &xs, &ys);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| (mlp.predict_proba(x) >= 0.5) == (y == 1.0))
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95, "acc {correct}");
    }

    #[test]
    fn large_ann_has_two_hidden_layers() {
        let cfg = MlpConfig::large_ann(10);
        assert_eq!(cfg.layers, vec![10, 8, 8, 1]);
        let (xs, ys) = blobs(40, 9);
        let xs10: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                let mut v = x.clone();
                v.extend(vec![0.0; 6]);
                v
            })
            .collect();
        let mlp = Mlp::train(&MlpConfig::large_ann(10).with_epochs(100), &xs10, &ys);
        assert_eq!(mlp.depth(), 3);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (xs, ys) = blobs(60, 3);
        let a = Mlp::train(&MlpConfig::small_ann(4).with_epochs(50), &xs, &ys);
        let b = Mlp::train(&MlpConfig::small_ann(4).with_epochs(50), &xs, &ys);
        assert_eq!(a.predict_proba(&xs[0]), b.predict_proba(&xs[0]));
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let (xs, ys) = blobs(60, 5);
        let mlp = Mlp::train(&MlpConfig::small_ann(4).with_epochs(30), &xs, &ys);
        for x in &xs {
            let p = mlp.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn mismatched_labels_panic() {
        let _ = Mlp::train(&MlpConfig::small_ann(2), &[vec![0.0, 0.0]], &[]);
    }

    #[test]
    #[should_panic(expected = "single output unit")]
    fn multi_output_rejected() {
        let _ = MlpConfig::new(vec![4, 3, 2]);
    }
}
