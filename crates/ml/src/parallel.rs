//! Scoped-thread fan-out for training loops, mirroring the pattern of
//! `core::sharded`: chunk the work across the host's cores with
//! `std::thread::scope`, and run inline when only one worker is available
//! (there, spawns are pure loss — priced honestly in the benches).

use std::sync::OnceLock;

/// Cached `std::thread::available_parallelism()`.
///
/// The underlying syscall walks cgroup files on Linux and costs ~10 µs per
/// call — far too slow to consult on a per-tree-node training path, so the
/// answer is read once per process.
pub fn host_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Applies `work` to every index in `0..n` and returns the results in index
/// order, fanning out over up to `workers` scoped threads in contiguous
/// chunks. `workers <= 1` (or a trivial `n`) runs inline with no spawns, so
/// callers can pass the host core count unconditionally; results are
/// identical either way because the reduction order never changes.
pub fn map_indexed<T, F>(n: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(work).collect();
    }
    let threads = workers.min(n);
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let work = &work;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(work).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("ml worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_workers_is_positive_and_stable() {
        let w = host_workers();
        assert!(w >= 1);
        assert_eq!(w, host_workers());
    }

    #[test]
    fn map_indexed_preserves_order_across_worker_counts() {
        let inline = map_indexed(37, 1, |i| i * i);
        for workers in [2, 3, 8, 64] {
            assert_eq!(map_indexed(37, workers, |i| i * i), inline);
        }
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
