//! Fleet scale: a whole cluster of machines under one hierarchical
//! engine, with arrival/departure churn (ours; beyond the paper).
//!
//! The paper evaluates Valkyrie on one machine at a time; the
//! multi-tenant experiment ([`crate::multi_tenant`]) scaled that to one
//! machine with thousands of tenants. This experiment completes the climb:
//! **100k+ machines**, each hosting a fleet of benign services, driven
//! through a [`FleetEngine`] — machine-sharded groups of pid-sharded
//! engines — so response bookkeeping (kill-at-`N*+1`, wrongful
//! terminations, purges) can be measured with *millions* of live
//! processes.
//!
//! Three things distinguish the cluster tier from a big flat machine:
//!
//! * **Global pids.** Every observation is keyed by
//!   [`ProcessId::from_parts`]`(machine, local)` — the packed
//!   cluster-wide pid namespace shared with `valkyrie_sim::GlobalPid`.
//! * **Churn.** Machines boot and decommission, services arrive and
//!   drain, every epoch, governed by the deterministic hash-driven
//!   [`FleetChurn`] model; attacks land via [`place_attacks`] rather than
//!   the old staggered schedule. Decommissioning a machine `forget`s its
//!   pids; draining a service `forget`s one.
//! * **Determinism at scale.** Every detector flag is a pure hash of
//!   `(seed, pid, epoch)` — no RNG state threads through the loop — so
//!   the security outcome is bit-reproducible, golden-pinned
//!   (`tests/golden_outputs.rs`), and invariant to how machines are
//!   partitioned into engine groups.
//!
//! The run also validates the *simulation substrate* at cluster scale: a
//! bounded [`Cluster`] boots machines against a shared prebuilt
//! filesystem corpus through the `fs_snapshot`/`restore_fs` path and
//! reports the per-machine boot cost, demonstrating that spawning a
//! machine is near-free.

use crate::harness::{pct, TextTable};
use std::collections::HashMap;
use std::time::Instant;
use valkyrie_core::hash::{mix64, FxBuildHasher};
use valkyrie_core::{
    Action, AssessmentFn, Classification, EngineConfig, FleetEngine, IngestDefense, IngestStats,
    OverflowPolicy, ProcessId, ProcessState, ShareActuator,
};
use valkyrie_sim::prelude::*;
use valkyrie_workloads::{fleet_instance, place_attacks, BenchmarkWorkload, FleetChurn};

/// Cluster shape, churn rates and detector quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetScaleConfig {
    /// Machines in the initial fleet.
    pub machines: usize,
    /// Benign services provisioned per machine (initial and on boot).
    pub services_per_machine: usize,
    /// Attacks placed across the fleet over the first half of the horizon.
    pub attacks: usize,
    /// Observation horizon, in epochs.
    pub epochs: u64,
    /// Valkyrie's measurement requirement.
    pub n_star: u64,
    /// Machine-sharded engine groups under the [`FleetEngine`].
    pub groups: usize,
    /// Pid shards inside each group.
    pub shards_per_group: usize,
    /// Per-epoch probability that an attack is flagged.
    pub tpr: f64,
    /// Verdict-time true-positive rate (efficacy after `N*` measurements).
    pub verdict_tpr: f64,
    /// Verdict-time false-positive rate (efficacy after `N*` measurements).
    pub verdict_fpr: f64,
    /// Scale factor on service lifetimes, so the short-lived end of the
    /// fleet completes within the horizon and exercises the engine's
    /// `complete` path at scale.
    pub lifetime_scale: f64,
    /// Seed for the detector-flag hash stream (the churn model carries
    /// its own seed).
    pub seed: u64,
    /// Arrival/departure churn rates.
    pub churn: FleetChurn,
    /// Machines booted in the substrate-validation pass (bounded — the
    /// main loop models machine state statistically; this pass proves the
    /// `Cluster` slab's shared-corpus boot path at its measured cost).
    pub substrate_machines: usize,
    /// Route the detector batch through the fleet's bounded ingest rings
    /// (Block policy sized for the whole fleet, overload defense armed)
    /// and answer with `drain_tick` instead of the synchronous `tick` —
    /// same security outcome, but the per-lane/per-publisher
    /// [`IngestStats`] counters appear in the summary.
    pub async_ingest: bool,
}

impl Default for FleetScaleConfig {
    fn default() -> Self {
        Self {
            machines: 100_000,
            services_per_machine: 10,
            attacks: 128,
            epochs: 100,
            n_star: 20,
            groups: 8,
            shards_per_group: 2,
            tpr: 0.90,
            verdict_tpr: 0.995,
            verdict_fpr: 0.005,
            lifetime_scale: 0.2,
            seed: 0xF1EE_75CA,
            churn: FleetChurn {
                seed: 0xF1EE_75CA,
                service_arrivals_per_epoch: 0.02,
                service_departure_prob: 0.002,
                machine_arrivals_per_epoch: 40.0,
                machine_departure_prob: 0.0004,
            },
            substrate_machines: 2_000,
            async_ingest: false,
        }
    }
}

impl FleetScaleConfig {
    /// A scaled-down configuration for tests and golden pinning.
    pub fn quick() -> Self {
        Self {
            machines: 200,
            services_per_machine: 5,
            attacks: 4,
            epochs: 40,
            n_star: 8,
            groups: 4,
            shards_per_group: 2,
            lifetime_scale: 0.1,
            churn: FleetChurn {
                seed: 0xF1EE_75CA,
                service_arrivals_per_epoch: 0.05,
                service_departure_prob: 0.01,
                machine_arrivals_per_epoch: 1.0,
                machine_departure_prob: 0.005,
            },
            substrate_machines: 64,
            ..Self::default()
        }
    }
}

/// Outcome of one fleet-scale run.
#[derive(Debug, Clone)]
pub struct FleetScaleResult {
    /// Machines booted over the run (initial fleet + churn arrivals).
    pub machines_booted: u64,
    /// Machines decommissioned by churn.
    pub machines_decommissioned: u64,
    /// Machines live after the final epoch.
    pub final_live_machines: usize,
    /// Benign services spawned over the run (initial + boots + churn).
    pub services_spawned: u64,
    /// Benign services that ran to completion.
    pub services_completed: u64,
    /// Benign services drained by service-level churn.
    pub services_drained: u64,
    /// Benign services evicted with their decommissioned machine.
    pub services_evicted: u64,
    /// Attacks placed on the fleet.
    pub attacks_launched: usize,
    /// Attacks terminated by the engine.
    pub attacks_terminated: usize,
    /// Mean epochs from an attack's arrival to its termination.
    pub mean_epochs_to_kill: f64,
    /// Benign services wrongfully terminated.
    pub benign_killed: u64,
    /// Wrongful terminations as a fraction of benign services spawned, %.
    pub benign_killed_pct: f64,
    /// Largest number of processes tracked at once.
    pub peak_tracked: usize,
    /// Processes evicted by the per-tick purge.
    pub purged: u64,
    /// Processes still tracked (live) after the final tick.
    pub final_tracked_live: usize,
    /// Total observations fed through the engine.
    pub observations: u64,
    /// Engine-only throughput, observations per second.
    pub observations_per_sec: f64,
    /// Machines booted in the substrate-validation pass.
    pub substrate_machines: usize,
    /// Mean cost of booting one machine against the shared corpus, µs.
    pub substrate_boot_us: f64,
    /// Fusion-tier counters merged across every machine's engine (the
    /// binary detector tier absorbs no verdicts, so only the
    /// escalation-ladder transitions are non-zero here).
    pub fusion_stats: valkyrie_core::FusionStats,
    /// Ingest-tier counters merged across every group's rings (`None`
    /// unless [`FleetScaleConfig::async_ingest`] routed the run through
    /// them).
    pub ingest: Option<IngestStats>,
    /// Rendered report.
    pub report: String,
}

/// A live service on a fleet machine. All simulation state is mirrored
/// from engine responses ([`crate::multi_tenant`]'s pattern) — the driver
/// never pays per-pid engine queries.
struct Service {
    /// Machine-local pid (packs into the low 40 bits of [`ProcessId`]).
    local: u64,
    burst_prob: f64,
    /// Epoch-units of work to complete (attacks never complete).
    lifetime: f64,
    /// Work accumulated at the enforced CPU share.
    progress: f64,
    state: Option<ProcessState>,
    /// `Some(instance)` marks an attack.
    attack: Option<usize>,
    dead: bool,
}

struct MachineRec {
    id: u32,
    next_local: u64,
    /// Attack hosts are exempt from machine-departure churn so kill
    /// latency is measured on a stable target.
    hosts_attack: bool,
    services: Vec<Service>,
}

impl MachineRec {
    fn new(id: u32, hosts_attack: bool) -> Self {
        Self {
            id,
            next_local: 1,
            hosts_attack,
            services: Vec::new(),
        }
    }

    fn spawn_benign(&mut self, instance: usize, lifetime_scale: f64) {
        let spec = fleet_instance(instance);
        let local = self.next_local;
        self.next_local += 1;
        self.services.push(Service {
            local,
            burst_prob: spec.burst_prob,
            lifetime: (spec.epochs_to_complete as f64 * lifetime_scale).max(1.0),
            progress: 0.0,
            state: None,
            attack: None,
            dead: false,
        });
    }

    fn spawn_attack(&mut self, instance: usize) {
        let local = self.next_local;
        self.next_local += 1;
        self.services.push(Service {
            local,
            burst_prob: 0.0,
            lifetime: f64::INFINITY,
            progress: 0.0,
            state: None,
            attack: Some(instance),
            dead: false,
        });
    }
}

/// The detector-flag draw: a pure hash of `(seed, pid, epoch)` in
/// `[0, 1)`, so the flag stream for a pid is independent of every other
/// pid and of engine partitioning.
fn flag_draw(seed: u64, pid: ProcessId, epoch: u64) -> f64 {
    let h = mix64(seed ^ mix64(pid.0) ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs the cluster through the hierarchical engine.
pub fn run(cfg: &FleetScaleConfig) -> FleetScaleResult {
    let config = EngineConfig::builder()
        .measurements_required(cfg.n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(true)
        .build()
        .expect("valid fleet-scale config");
    let expected = cfg.machines * cfg.services_per_machine + cfg.attacks;
    let mut fleet = FleetEngine::with_capacity(
        config,
        cfg.groups.max(1),
        cfg.shards_per_group.max(1),
        expected,
    );

    // Attack placement over the *initial* fleet; hosts never depart.
    let placements = place_attacks(cfg.seed, cfg.attacks, cfg.machines.max(1), cfg.epochs);
    let mut arrivals_at: Vec<Vec<usize>> = vec![Vec::new(); cfg.epochs.max(1) as usize];
    for p in &placements {
        arrivals_at[p.arrival_epoch as usize].push(p.instance);
    }
    let mut attack_arrival: Vec<u64> = vec![0; cfg.attacks];
    let mut attack_killed: Vec<Option<u64>> = vec![None; cfg.attacks];
    for p in &placements {
        attack_arrival[p.instance] = p.arrival_epoch;
    }

    // The initial fleet. Machine ids are cluster-unique and never reused;
    // churn boots continue the sequence.
    let mut machines: Vec<MachineRec> = Vec::with_capacity(cfg.machines);
    let mut id_index: HashMap<u32, usize, FxBuildHasher> =
        HashMap::with_capacity_and_hasher(cfg.machines, FxBuildHasher::default());
    let mut services_spawned = 0u64;
    let mut spawn_counter = 0usize;
    for i in 0..cfg.machines {
        let hosts = placements.iter().any(|p| p.machine_index == i);
        let mut m = MachineRec::new(i as u32, hosts);
        for _ in 0..cfg.services_per_machine {
            m.spawn_benign(spawn_counter, cfg.lifetime_scale);
            spawn_counter += 1;
            services_spawned += 1;
        }
        id_index.insert(m.id, i);
        machines.push(m);
    }
    let mut next_machine_id = cfg.machines as u32;
    let mut machines_booted = cfg.machines as u64;
    let mut machines_decommissioned = 0u64;
    let mut services_drained = 0u64;
    let mut services_evicted = 0u64;
    let mut services_completed = 0u64;
    let mut benign_killed = 0u64;

    let mut batch: Vec<(ProcessId, Classification)> = Vec::with_capacity(expected);
    let mut refs: Vec<(u32, u32)> = Vec::with_capacity(expected);
    let mut departing: Vec<usize> = Vec::new();

    // The async path: the whole detector batch goes through the fleet's
    // bounded rings (Block, sized for the fleet — lossless) and comes back
    // out of `drain_tick` concatenated in *group* order, so responses are
    // credited through a pid → (machine, service) map instead of `refs`.
    let publisher = cfg.async_ingest.then(|| {
        fleet.enable_ingest_defended(
            expected.max(1),
            OverflowPolicy::Block,
            IngestDefense::full(),
        )
    });
    let mut slot_of: HashMap<u64, (u32, u32), FxBuildHasher> = HashMap::with_capacity_and_hasher(
        if cfg.async_ingest { expected } else { 0 },
        FxBuildHasher::default(),
    );

    let mut observations = 0u64;
    let mut peak_tracked = 0usize;
    let mut engine_time = std::time::Duration::ZERO;

    for epoch in 0..cfg.epochs {
        // Machine churn: boots first (a fresh machine arrives with its
        // full service complement), then departures. Attack hosts are
        // exempt so kill latency has a stable target.
        for _ in 0..cfg.churn.machine_arrivals(epoch) {
            let id = next_machine_id;
            next_machine_id += 1;
            machines_booted += 1;
            let mut m = MachineRec::new(id, false);
            for _ in 0..cfg.services_per_machine {
                m.spawn_benign(spawn_counter, cfg.lifetime_scale);
                spawn_counter += 1;
                services_spawned += 1;
            }
            id_index.insert(id, machines.len());
            machines.push(m);
        }
        departing.clear();
        for (idx, m) in machines.iter().enumerate() {
            if !m.hosts_attack && cfg.churn.machine_departs(m.id, epoch) {
                departing.push(idx);
            }
        }
        // Highest index first, so earlier swap_removes don't shift later
        // targets.
        for &idx in departing.iter().rev() {
            let m = machines.swap_remove(idx);
            id_index.remove(&m.id);
            if idx < machines.len() {
                id_index.insert(machines[idx].id, idx);
            }
            for s in &m.services {
                fleet.forget(ProcessId::from_parts(m.id, s.local));
                services_evicted += 1;
            }
            machines_decommissioned += 1;
        }

        // Attack arrivals.
        for &instance in &arrivals_at[epoch as usize] {
            let host_id = placements[instance].machine_index as u32;
            let idx = id_index[&host_id];
            machines[idx].spawn_attack(instance);
        }

        // Service churn: arrivals and drains, per machine.
        for m in machines.iter_mut() {
            let id = m.id;
            for _ in 0..cfg.churn.service_arrivals(id, epoch) {
                m.spawn_benign(spawn_counter, cfg.lifetime_scale);
                spawn_counter += 1;
                services_spawned += 1;
            }
            m.services.retain(|s| {
                if s.attack.is_none() && cfg.churn.service_departs(id, s.local, epoch) {
                    fleet.forget(ProcessId::from_parts(id, s.local));
                    services_drained += 1;
                    false
                } else {
                    true
                }
            });
        }

        // The detector pass: per-epoch rates normally, verdict-grade
        // rates once the monitor holds its N* measurements (the
        // Terminable state mirrored from the latest response).
        batch.clear();
        refs.clear();
        for (mi, m) in machines.iter().enumerate() {
            for (si, s) in m.services.iter().enumerate() {
                let pid = ProcessId::from_parts(m.id, s.local);
                let decision_ready = s.state == Some(ProcessState::Terminable);
                let flag_prob = match s.attack {
                    Some(_) if decision_ready => cfg.verdict_tpr,
                    Some(_) => cfg.tpr,
                    None if decision_ready => cfg.verdict_fpr,
                    None => s.burst_prob,
                };
                let inference = if flag_draw(cfg.seed, pid, epoch) < flag_prob {
                    Classification::Malicious
                } else {
                    Classification::Benign
                };
                batch.push((pid, inference));
                refs.push((mi as u32, si as u32));
            }
        }

        let purged_before = fleet.purged_total();
        let t0 = Instant::now();
        let responses = if let Some(publisher) = &publisher {
            let accepted = publisher.publish_batch(&batch);
            assert_eq!(accepted, batch.len(), "rings sized for the fleet");
            fleet.drain_tick()
        } else {
            fleet.tick(&batch)
        };
        engine_time += t0.elapsed();
        observations += responses.len() as u64;
        let purged_this_tick = (fleet.purged_total() - purged_before) as usize;
        peak_tracked = peak_tracked.max(fleet.tracked() + purged_this_tick);

        // Credit responses back onto the fleet. The synchronous tick
        // answers in batch order, so `refs` maps each response to its
        // machine/service slot; the drained path concatenates groups, so
        // slots are looked up by pid instead.
        if publisher.is_some() {
            slot_of.clear();
            for (&(pid, _), &slot) in batch.iter().zip(&refs) {
                slot_of.insert(pid.0, slot);
            }
        }
        for (i, resp) in responses.iter().enumerate() {
            let (mi, si) = if publisher.is_some() {
                slot_of[&resp.pid.0]
            } else {
                refs[i]
            };
            let m = &mut machines[mi as usize];
            let s = &mut m.services[si as usize];
            s.state = Some(resp.state);
            if resp.action == Action::Terminate {
                s.dead = true;
                match s.attack {
                    Some(instance) => {
                        if attack_killed[instance].is_none() {
                            attack_killed[instance] = Some(epoch);
                        }
                    }
                    None => benign_killed += 1,
                }
                continue;
            }
            if s.attack.is_none() {
                s.progress += resp.resources.cpu;
                if s.progress >= s.lifetime {
                    s.dead = true;
                    services_completed += 1;
                    let _ = fleet.complete(ProcessId::from_parts(m.id, s.local));
                }
            }
        }
        for m in machines.iter_mut() {
            m.services.retain(|s| !s.dead);
        }
    }

    let attacks_terminated = attack_killed.iter().filter(|k| k.is_some()).count();
    let mean_epochs_to_kill = if attacks_terminated == 0 {
        f64::NAN
    } else {
        attack_killed
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|at| (at - attack_arrival[i] + 1) as f64))
            .sum::<f64>()
            / attacks_terminated as f64
    };
    let benign_killed_pct = 100.0 * benign_killed as f64 / services_spawned.max(1) as f64;
    let observations_per_sec = observations as f64 / engine_time.as_secs_f64().max(1e-9);

    // Substrate validation: a bounded `Cluster` boots machines against a
    // shared prebuilt corpus via the snapshot/restore path, proving the
    // slab's near-free boot and global pid naming end to end.
    let (substrate_boot_us, substrate_reports) = run_substrate(cfg);

    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "machines booted/decommissioned".into(),
        format!("{machines_booted}/{machines_decommissioned}"),
    ]);
    t.row(vec![
        "machines live at end".into(),
        machines.len().to_string(),
    ]);
    t.row(vec![
        "services spawned".into(),
        services_spawned.to_string(),
    ]);
    t.row(vec![
        "services completed/drained/evicted".into(),
        format!("{services_completed}/{services_drained}/{services_evicted}"),
    ]);
    t.row(vec![
        "attacks terminated".into(),
        format!("{attacks_terminated}/{}", cfg.attacks),
    ]);
    t.row(vec![
        "mean epochs to kill".into(),
        format!("{mean_epochs_to_kill:.1}"),
    ]);
    t.row(vec![
        "benign killed".into(),
        format!("{benign_killed} ({})", pct(benign_killed_pct)),
    ]);
    t.row(vec!["peak tracked".into(), peak_tracked.to_string()]);
    t.row(vec!["purged".into(), fleet.purged_total().to_string()]);
    t.row(vec![
        "live after final tick".into(),
        fleet.tracked_live().to_string(),
    ]);
    t.row(vec![
        "engine throughput".into(),
        format!("{:.2} Mobs/s", observations_per_sec / 1e6),
    ]);
    let fusion_stats = fleet.fusion_stats();
    t.row(vec![
        "fusion verdicts/stale-decayed/escalations".into(),
        format!(
            "{}/{}/{}",
            fusion_stats.verdicts, fusion_stats.stale_decayed, fusion_stats.escalations
        ),
    ]);
    let ingest = fleet.ingest_stats();
    if let Some(stats) = &ingest {
        t.row(vec![
            "ingest published/dropped/priority/deflected".into(),
            format!(
                "{}/{}/{}/{}",
                stats.published, stats.dropped, stats.priority_queued, stats.evictions_deflected
            ),
        ]);
        let by_pub: Vec<String> = stats
            .dropped_by_publisher
            .iter()
            .enumerate()
            .map(|(id, n)| format!("p{id}:{n}"))
            .collect();
        t.row(vec![
            "ingest dropped by publisher".into(),
            if by_pub.is_empty() {
                "none".into()
            } else {
                by_pub.join(" ")
            },
        ]);
    }
    t.row(vec![
        "substrate boot".into(),
        format!(
            "{} machines, {substrate_boot_us:.1} µs/machine, {substrate_reports} epoch reports",
            cfg.substrate_machines
        ),
    ]);
    let report = format!(
        "Fleet scale — {} machines × {} services + {} attacks over {} epochs, \
         {} groups × {} shards, N* = {}\n\
         ({} observations through FleetEngine::tick; churn: {:.2} boots + \
         {:.4} departs/machine, {:.2} arrivals + {:.4} drains/service, per epoch)\n\n{}",
        cfg.machines,
        cfg.services_per_machine,
        cfg.attacks,
        cfg.epochs,
        cfg.groups,
        cfg.shards_per_group,
        cfg.n_star,
        observations,
        cfg.churn.machine_arrivals_per_epoch,
        cfg.churn.machine_departure_prob,
        cfg.churn.service_arrivals_per_epoch,
        cfg.churn.service_departure_prob,
        t.render()
    );

    FleetScaleResult {
        machines_booted,
        machines_decommissioned,
        final_live_machines: machines.len(),
        services_spawned,
        services_completed,
        services_drained,
        services_evicted,
        attacks_launched: cfg.attacks,
        attacks_terminated,
        mean_epochs_to_kill,
        benign_killed,
        benign_killed_pct,
        peak_tracked,
        purged: fleet.purged_total(),
        final_tracked_live: fleet.tracked_live(),
        observations,
        observations_per_sec,
        substrate_machines: cfg.substrate_machines,
        substrate_boot_us,
        fusion_stats,
        ingest,
        report,
    }
}

/// Boots `cfg.substrate_machines` simulated machines in a [`Cluster`]
/// sharing one prebuilt corpus, spawns a service on each, and runs one
/// cluster epoch. Returns (mean boot µs, epoch reports collected).
fn run_substrate(cfg: &FleetScaleConfig) -> (f64, usize) {
    let n = cfg.substrate_machines.max(1);
    let template = SimFs::uniform("/srv", 512, 4096);
    let mut cluster = Cluster::new(ClusterConfig {
        machine: MachineConfig::default(),
        fs_template: Some(template),
        seed: cfg.seed,
    });
    let t0 = Instant::now();
    let ids: Vec<MachineId> = (0..n).map(|_| cluster.boot()).collect();
    let boot_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
    for (i, &id) in ids.iter().enumerate() {
        cluster
            .spawn(id, Box::new(BenchmarkWorkload::new(fleet_instance(i))))
            .expect("freshly booted machine accepts a spawn");
    }
    let mut out = Vec::new();
    cluster.run_epoch_into(&mut out);
    (boot_us, out.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_holds_response_guarantees_under_churn() {
        let r = run(&FleetScaleConfig::quick());
        // Every attack dies, and no earlier than N* + 1 epochs after
        // arrival (n_star = 8 in the quick config).
        assert_eq!(r.attacks_terminated, r.attacks_launched);
        assert!(r.mean_epochs_to_kill >= 9.0, "{}", r.mean_epochs_to_kill);
        // Wrongful terminations stay a tiny fraction of the fleet.
        assert!(r.benign_killed_pct < 1.0, "{}", r.benign_killed_pct);
        // Churn actually happened.
        assert!(r.machines_booted > 200, "{}", r.machines_booted);
        assert!(r.machines_decommissioned > 0);
        assert!(r.services_drained > 0);
        assert!(r.services_evicted > 0);
        assert!(r.services_completed > 0, "short services should finish");
        // Bookkeeping is conservative: everything fed in was tracked.
        assert!(r.observations > 0);
        assert!(r.peak_tracked > 1_000);
        // The substrate pass booted and drove every machine.
        assert_eq!(r.substrate_machines, 64);
        assert!(r.substrate_boot_us < 10_000.0, "{}", r.substrate_boot_us);
    }

    #[test]
    fn outcome_is_invariant_to_engine_grouping() {
        let base = FleetScaleConfig::quick();
        let one = run(&FleetScaleConfig { groups: 1, ..base });
        let four = run(&FleetScaleConfig { groups: 4, ..base });
        assert_eq!(one.attacks_terminated, four.attacks_terminated);
        assert_eq!(
            one.mean_epochs_to_kill.to_bits(),
            four.mean_epochs_to_kill.to_bits()
        );
        assert_eq!(one.benign_killed, four.benign_killed);
        assert_eq!(one.services_completed, four.services_completed);
        assert_eq!(one.observations, four.observations);
        assert_eq!(one.purged, four.purged);
        assert_eq!(one.final_tracked_live, four.final_tracked_live);
    }

    #[test]
    fn async_ingest_path_matches_the_synchronous_outcome() {
        let base = FleetScaleConfig::quick();
        let sync = run(&base);
        let drained = run(&FleetScaleConfig {
            async_ingest: true,
            ..base
        });
        // Lossless rings + per-pid crediting: the security outcome is
        // bit-identical to the synchronous tick path.
        assert_eq!(sync.attacks_terminated, drained.attacks_terminated);
        assert_eq!(
            sync.mean_epochs_to_kill.to_bits(),
            drained.mean_epochs_to_kill.to_bits()
        );
        assert_eq!(sync.benign_killed, drained.benign_killed);
        assert_eq!(sync.services_completed, drained.services_completed);
        assert_eq!(sync.observations, drained.observations);
        assert_eq!(sync.purged, drained.purged);
        assert_eq!(sync.final_tracked_live, drained.final_tracked_live);
        // And the ingest tier's counters surface in the drained summary.
        assert!(sync.ingest.is_none());
        let stats = drained.ingest.expect("async run surfaces ingest stats");
        assert_eq!(stats.published, drained.observations);
        assert_eq!(stats.drained, drained.observations);
        assert_eq!(stats.dropped, 0);
        assert!(drained
            .report
            .contains("ingest published/dropped/priority/deflected"));
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(&FleetScaleConfig::quick());
        let b = run(&FleetScaleConfig::quick());
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.benign_killed, b.benign_killed);
        assert_eq!(
            a.mean_epochs_to_kill.to_bits(),
            b.mean_epochs_to_kill.to_bits()
        );
        assert_eq!(a.services_drained, b.services_drained);
        assert_eq!(a.machines_decommissioned, b.machines_decommissioned);
    }
}
