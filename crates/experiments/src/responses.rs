//! Quantifying Table I: every post-detection response strategy replayed on
//! identical detector traces.
//!
//! The paper's Table I grades response strategies *qualitatively* against
//! R1 (throttle attacks) and R2 (spare false positives). This experiment
//! makes the grades measurable: each policy replays
//!
//! * an **attack trace** — a time-progressive attack flagged with the
//!   detector's true-positive rate each epoch — reporting the attack
//!   progress the policy permits (R1: lower is better), and
//! * an ensemble of **benign traces** — reporting the wrongful-termination
//!   probability and the mean slowdown of the surviving work (R2: both
//!   lower is better).
//!
//! Two modelling choices matter and are deliberate:
//!
//! 1. **Benign false positives are bursty.** Real HPC detectors misfire on
//!    program *phases* (the paper's `blender_r` is flagged in 30 % of its
//!    epochs), so benign traces come from a two-state Markov chain whose
//!    bursts persist for a few epochs. This is exactly the regime in which
//!    Mushtaq et al.'s three-consecutive rule keeps killing benign
//!    processes (the paper reports it only improved wrongful terminations
//!    from 5 % to "under 3 %", and calls the choice of `k` arbitrary).
//! 2. **Valkyrie's terminable verdict uses accumulated evidence.** Per
//!    Section IV-A / Fig. 1, efficacy improves with measurements: the
//!    verdict at `N*` is drawn at the detector's *N\*-measurement* rates
//!    (`verdict_tpr`/`verdict_fpr`), not its per-epoch rates — that is the
//!    entire point of waiting for `N*`. Baseline policies cannot benefit
//!    because they act on raw per-epoch inferences.
//!
//! A second table replays the rowhammer-specific DRAM-refresh response
//! (ANVIL / BlockHammer) to show why it earns its Table I checkmarks — and
//! why they do not generalise beyond rowhammer.

use crate::harness::{pct, TextTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valkyrie_core::baselines::{
    ConsecutiveTermination, DramRefresh, PriorityReduction, WarningOnly,
};
use valkyrie_core::migration::{migration_progress, MigrationPolicy};
use valkyrie_core::{
    slowdown_percent, Action, AssessmentFn, Classification, EngineConfig, ExecutionMode, ProcessId,
    ProcessState, ShardedEngine, ShareActuator,
};

/// Detector quality and workload shape shared by all policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsesConfig {
    /// Per-epoch probability that the attack is flagged.
    pub tpr: f64,
    /// Probability a benign process enters a false-positive burst.
    pub burst_enter: f64,
    /// Probability a false-positive burst ends each epoch.
    pub burst_exit: f64,
    /// Flag probability inside a burst (outside a burst it is zero).
    pub burst_flag: f64,
    /// Verdict-time true-positive rate (efficacy after `N*` measurements).
    pub verdict_tpr: f64,
    /// Verdict-time false-positive rate (efficacy after `N*` measurements).
    pub verdict_fpr: f64,
    /// Attack observation horizon, in epochs.
    pub attack_epochs: usize,
    /// Benign process lifetime, in epochs.
    pub benign_epochs: usize,
    /// Number of independent benign processes (seeds).
    pub benign_trials: u64,
    /// Valkyrie's measurement requirement.
    pub n_star: u64,
    /// How the fleet engine fans batches over its shards (scoped per-tick
    /// threads or the persistent worker pool); rows are identical either
    /// way — the scaling tier's equivalence guarantee.
    pub execution: ExecutionMode,
}

impl Default for ResponsesConfig {
    /// The Section VI-A operating point: a deliberately simple detector,
    /// ~4 % marginal FP epochs arriving in bursts (mean length 4), 90 %
    /// per-epoch TPR, and Fig. 1-grade verdict efficacy after `N* = 30`
    /// measurements.
    fn default() -> Self {
        Self {
            tpr: 0.90,
            burst_enter: 0.012,
            burst_exit: 0.25,
            burst_flag: 0.90,
            verdict_tpr: 0.995,
            verdict_fpr: 0.005,
            attack_epochs: 60,
            benign_epochs: 300,
            benign_trials: 40,
            n_star: 30,
            execution: ExecutionMode::ScopedSpawn,
        }
    }
}

impl ResponsesConfig {
    /// Marginal per-epoch false-positive rate implied by the burst model.
    pub fn marginal_fpr(&self) -> f64 {
        let burst_fraction = self.burst_enter / (self.burst_enter + self.burst_exit);
        burst_fraction * self.burst_flag
    }
}

/// One policy's measured R1/R2 numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Policy name as shown in Table I.
    pub policy: String,
    /// Attack progress permitted, % of unimpeded (R1; lower is better).
    pub attack_progress_pct: f64,
    /// Probability a benign process is wrongfully terminated (R2).
    pub benign_killed_pct: f64,
    /// Mean benign slowdown across trials, termination included as lost
    /// progress (R2).
    pub benign_slowdown_pct: f64,
}

/// Structured result of the comparison.
#[derive(Debug, Clone)]
pub struct ResponsesResult {
    /// Per-policy measurements.
    pub rows: Vec<PolicyRow>,
    /// Rowhammer-specific comparison rows (policy, flips permitted).
    pub rowhammer: Vec<(String, u64)>,
    /// Rendered report.
    pub report: String,
}

/// Independent per-epoch flags (the attack's detection stream).
fn iid_trace(epochs: usize, flag_rate: f64, seed: u64) -> Vec<Classification> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|_| {
            if rng.gen::<f64>() < flag_rate {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        })
        .collect()
}

/// Bursty false positives: a two-state Markov chain over program phases.
fn bursty_trace(epochs: usize, cfg: &ResponsesConfig, seed: u64) -> Vec<Classification> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut in_burst = false;
    (0..epochs)
        .map(|_| {
            in_burst = if in_burst {
                rng.gen::<f64>() >= cfg.burst_exit
            } else {
                rng.gen::<f64>() < cfg.burst_enter
            };
            if in_burst && rng.gen::<f64>() < cfg.burst_flag {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        })
        .collect()
}

/// Progress fraction (0–100 %) from a per-epoch progress series.
fn progress_pct(progress: &[f64]) -> f64 {
    if progress.is_empty() {
        return 0.0;
    }
    100.0 * progress.iter().sum::<f64>() / progress.len() as f64
}

struct PolicyEval {
    progress: Vec<f64>,
    terminated: bool,
}

/// Cyclic-monitoring Valkyrie engine configuration shared by the fleet
/// evaluator (the Section VI-A operating point).
fn valkyrie_config(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(true)
        .build()
        .expect("valid valkyrie config")
}

/// Replays a whole fleet of traces through one cyclic-monitoring
/// [`ShardedEngine`], one epoch per batch; terminable verdicts are drawn
/// from `verdict_traces` (the `N*`-measurement-grade inference streams)
/// instead of the per-epoch streams.
///
/// Process `i` replays `epoch_traces[i]`; traces may differ in length
/// across processes, but each process's verdict trace must cover its
/// epoch trace (a verdict can be drawn at any epoch).
/// Results are identical to replaying each trace alone (the sharding
/// tier's equivalence guarantee), but the engine answers each epoch in a
/// single batch — the experiments layer drives the same API a production
/// embedder would.
fn valkyrie_eval_fleet(
    epoch_traces: &[&[Classification]],
    verdict_traces: &[&[Classification]],
    n_star: u64,
    shards: usize,
    execution: ExecutionMode,
) -> Vec<PolicyEval> {
    assert_eq!(epoch_traces.len(), verdict_traces.len());
    for (epochs, verdicts) in epoch_traces.iter().zip(verdict_traces) {
        assert!(
            verdicts.len() >= epochs.len(),
            "verdict trace shorter than epoch trace ({} < {})",
            verdicts.len(),
            epochs.len()
        );
    }
    let mut engine = ShardedEngine::with_mode(
        valkyrie_config(n_star),
        shards,
        epoch_traces.len(),
        execution,
    );
    let mut evals: Vec<PolicyEval> = epoch_traces
        .iter()
        .map(|t| PolicyEval {
            progress: Vec::with_capacity(t.len()),
            terminated: false,
        })
        .collect();
    // Per-process state and CPU share mirrored from each tick's responses,
    // so the driver never issues per-pid `engine.state()`/`resources()`
    // queries — in pool mode each of those is a blocking channel
    // round-trip, serialised across the whole fleet every epoch.
    let mut states: Vec<Option<ProcessState>> = vec![None; epoch_traces.len()];
    let mut cpu_shares: Vec<f64> = vec![1.0; epoch_traces.len()];
    let horizon = epoch_traces.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut batch: Vec<(ProcessId, Classification)> = Vec::with_capacity(epoch_traces.len());
    let mut live: Vec<usize> = Vec::with_capacity(epoch_traces.len());
    for epoch in 0..horizon {
        batch.clear();
        live.clear();
        for (i, trace) in epoch_traces.iter().enumerate() {
            if epoch >= trace.len() {
                continue;
            }
            if evals[i].terminated {
                evals[i].progress.push(0.0);
                continue;
            }
            let pid = ProcessId(i as u64);
            // Work achieved this epoch is the CPU share enforced so far
            // (full before the first observation).
            evals[i].progress.push(cpu_shares[i]);
            let inference = if states[i] == Some(ProcessState::Terminable) {
                verdict_traces[i][epoch]
            } else {
                trace[epoch]
            };
            batch.push((pid, inference));
            live.push(i);
        }
        for (resp, &i) in engine.observe_batch(&batch).iter().zip(&live) {
            states[i] = Some(resp.state);
            cpu_shares[i] = resp.resources.cpu;
            if resp.action == Action::Terminate {
                evals[i].terminated = true;
            }
        }
    }
    evals
}

/// Single-trace convenience over [`valkyrie_eval_fleet`].
fn valkyrie_eval(
    epoch_trace: &[Classification],
    verdicts: &[Classification],
    n_star: u64,
) -> PolicyEval {
    valkyrie_eval_fleet(
        &[epoch_trace],
        &[verdicts],
        n_star,
        1,
        ExecutionMode::ScopedSpawn,
    )
    .remove(0)
}

fn evaluate(
    policy: &str,
    inferences: &[Classification],
    verdicts: &[Classification],
    cfg: &ResponsesConfig,
) -> PolicyEval {
    match policy {
        "warning only" => {
            let out = WarningOnly.run(inferences);
            PolicyEval {
                progress: out.progress,
                terminated: false,
            }
        }
        "terminate on 1st detection" => {
            let out = ConsecutiveTermination::new(1).run(inferences);
            PolicyEval {
                terminated: out.terminated_at.is_some(),
                progress: out.progress,
            }
        }
        "terminate on 3 consecutive" => {
            let out = ConsecutiveTermination::new(3).run(inferences);
            PolicyEval {
                terminated: out.terminated_at.is_some(),
                progress: out.progress,
            }
        }
        "priority reduction (50%)" => {
            let out = PriorityReduction::new(0.5).run(inferences);
            PolicyEval {
                progress: out.progress,
                terminated: false,
            }
        }
        "core migration" => PolicyEval {
            progress: migration_progress(inferences, MigrationPolicy::core_migration()),
            terminated: false,
        },
        "system migration" => PolicyEval {
            progress: migration_progress(inferences, MigrationPolicy::system_migration()),
            terminated: false,
        },
        "valkyrie" => valkyrie_eval(inferences, verdicts, cfg.n_star),
        other => unreachable!("unknown policy {other}"),
    }
}

/// All policies in Table I order.
pub const POLICIES: [&str; 7] = [
    "warning only",
    "terminate on 1st detection",
    "terminate on 3 consecutive",
    "priority reduction (50%)",
    "core migration",
    "system migration",
    "valkyrie",
];

/// Runs the quantified Table I comparison.
pub fn run(cfg: &ResponsesConfig) -> ResponsesResult {
    let attack_trace = iid_trace(cfg.attack_epochs, cfg.tpr, 0x7A6B);
    let attack_verdicts = iid_trace(cfg.attack_epochs, cfg.verdict_tpr, 0x7A6C);

    let benign_traces: Vec<Vec<Classification>> = (0..cfg.benign_trials)
        .map(|s| bursty_trace(cfg.benign_epochs, cfg, 0xBE9 + s))
        .collect();
    let benign_verdicts: Vec<Vec<Classification>> = (0..cfg.benign_trials)
        .map(|s| iid_trace(cfg.benign_epochs, cfg.verdict_fpr, 0x5EED + s))
        .collect();

    let mut rows = Vec::new();
    for policy in POLICIES {
        let attack = evaluate(policy, &attack_trace, &attack_verdicts, cfg);
        // The valkyrie policy replays every benign process concurrently
        // through one sharded engine, one epoch per batch — the baselines
        // act on raw per-process streams and are replayed one by one.
        let benign_evals: Vec<PolicyEval> = if policy == "valkyrie" {
            let traces: Vec<&[Classification]> = benign_traces.iter().map(Vec::as_slice).collect();
            let verdicts: Vec<&[Classification]> =
                benign_verdicts.iter().map(Vec::as_slice).collect();
            valkyrie_eval_fleet(&traces, &verdicts, cfg.n_star, 4, cfg.execution)
        } else {
            benign_traces
                .iter()
                .zip(&benign_verdicts)
                .map(|(trace, verdicts)| evaluate(policy, trace, verdicts, cfg))
                .collect()
        };
        let mut killed = 0u64;
        let mut slowdown_sum = 0.0;
        for (trace, eval) in benign_traces.iter().zip(&benign_evals) {
            if eval.terminated {
                killed += 1;
            }
            let baseline = vec![1.0; trace.len()];
            slowdown_sum += slowdown_percent(&baseline, &eval.progress);
        }
        rows.push(PolicyRow {
            policy: policy.to_string(),
            attack_progress_pct: progress_pct(&attack.progress),
            benign_killed_pct: 100.0 * killed as f64 / cfg.benign_trials as f64,
            benign_slowdown_pct: slowdown_sum / cfg.benign_trials as f64,
        });
    }

    // Rowhammer-specific: how many flips does each response permit? The
    // DIMM flips after 29 consecutive un-refreshed hammer epochs (the
    // paper's measured rate); the attack hammers every epoch.
    let hammer_epochs = 864;
    let hammer_trace = iid_trace(hammer_epochs, cfg.tpr, 0xD1);
    let hammer_verdicts = iid_trace(hammer_epochs, cfg.verdict_tpr, 0xD2);
    let flip_threshold = 29;
    let refresh = DramRefresh::new(flip_threshold).run(&hammer_trace);
    let warn_flips = (hammer_epochs as u32 / flip_threshold) as u64;
    let valk = valkyrie_eval(&hammer_trace, &hammer_verdicts, cfg.n_star);
    // Hammer progress accumulates CPU share; a flip needs 29 epoch-units.
    let valk_flips = (valk.progress.iter().sum::<f64>() / f64::from(flip_threshold)) as u64;
    let rowhammer = vec![
        ("warning only".to_string(), warn_flips),
        ("DRAM refresh (ANVIL)".to_string(), refresh.flips),
        ("valkyrie".to_string(), valk_flips),
    ];

    let mut t = TextTable::new(vec![
        "response policy",
        "attack progress (R1)",
        "benign killed (R2)",
        "benign slowdown (R2)",
    ]);
    for r in &rows {
        t.row(vec![
            r.policy.clone(),
            pct(r.attack_progress_pct),
            pct(r.benign_killed_pct),
            pct(r.benign_slowdown_pct),
        ]);
    }
    let mut rh = TextTable::new(vec!["response policy", "bit flips permitted"]);
    for (p, flips) in &rowhammer {
        rh.row(vec![p.clone(), flips.to_string()]);
    }
    let report = format!(
        "Table I, quantified — per-epoch TPR {:.0}%, bursty FPs (marginal {:.1}%), \
         verdict efficacy {:.1}%/{:.1}%, N* = {}\n\
         (attack: {} epochs; benign: {} processes x {} epochs)\n\n{}\n\
         Rowhammer-specific responses ({} hammer epochs, flip threshold {}):\n\n{}",
        cfg.tpr * 100.0,
        cfg.marginal_fpr() * 100.0,
        cfg.verdict_tpr * 100.0,
        cfg.verdict_fpr * 100.0,
        cfg.n_star,
        cfg.attack_epochs,
        cfg.benign_trials,
        cfg.benign_epochs,
        t.render(),
        hammer_epochs,
        flip_threshold,
        rh.render()
    );

    ResponsesResult {
        rows,
        rowhammer,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ResponsesConfig {
        ResponsesConfig {
            benign_trials: 10,
            benign_epochs: 150,
            ..ResponsesConfig::default()
        }
    }

    fn row<'a>(r: &'a ResponsesResult, policy: &str) -> &'a PolicyRow {
        r.rows.iter().find(|x| x.policy == policy).unwrap()
    }

    #[test]
    fn marginal_fpr_matches_burst_parameters() {
        let cfg = ResponsesConfig::default();
        let m = cfg.marginal_fpr();
        assert!((0.03..0.06).contains(&m), "marginal FPR {m}");
    }

    #[test]
    fn warning_only_fails_r1_but_satisfies_r2() {
        let r = run(&quick());
        let w = row(&r, "warning only");
        assert_eq!(w.attack_progress_pct, 100.0);
        assert_eq!(w.benign_killed_pct, 0.0);
        assert_eq!(w.benign_slowdown_pct, 0.0);
    }

    #[test]
    fn immediate_termination_kills_most_benign_processes() {
        let r = run(&quick());
        let t1 = row(&r, "terminate on 1st detection");
        assert!(t1.attack_progress_pct < 10.0, "{}", t1.attack_progress_pct);
        assert!(t1.benign_killed_pct > 50.0, "{}", t1.benign_killed_pct);
    }

    #[test]
    fn three_consecutive_still_kills_under_bursty_false_positives() {
        // The paper's critique of Mushtaq et al.: k-consecutive reduces but
        // does not fix wrongful terminations, because real FPs are bursty.
        let r = run(&quick());
        let t1 = row(&r, "terminate on 1st detection");
        let t3 = row(&r, "terminate on 3 consecutive");
        assert!(t3.benign_killed_pct <= t1.benign_killed_pct);
        assert!(
            t3.benign_killed_pct > 20.0,
            "bursty FPs should still defeat k=3: {}",
            t3.benign_killed_pct
        );
    }

    #[test]
    fn priority_reduction_lets_the_attack_run_forever() {
        let r = run(&quick());
        let p = row(&r, "priority reduction (50%)");
        // R1 fails: the attack keeps ~50% progress rate endlessly.
        assert!(p.attack_progress_pct > 45.0);
        assert_eq!(p.benign_killed_pct, 0.0);
    }

    #[test]
    fn valkyrie_throttles_the_attack_and_spares_benign_work() {
        let r = run(&quick());
        let v = row(&r, "valkyrie");
        assert!(v.attack_progress_pct < 35.0, "{}", v.attack_progress_pct);
        // Wrongful terminations collapse to the verdict FPR per cycle —
        // an order of magnitude below the termination baselines.
        let t1 = row(&r, "terminate on 1st detection");
        let t3 = row(&r, "terminate on 3 consecutive");
        assert!(v.benign_killed_pct < t3.benign_killed_pct);
        assert!(v.benign_killed_pct < t1.benign_killed_pct);
        assert!(v.benign_killed_pct <= 10.0, "{}", v.benign_killed_pct);
        assert!(v.benign_slowdown_pct < 25.0, "{}", v.benign_slowdown_pct);
    }

    #[test]
    fn no_baseline_meets_both_requirements_simultaneously() {
        let r = run(&quick());
        let v = row(&r, "valkyrie");
        let competitors = r
            .rows
            .iter()
            .filter(|x| x.policy != "valkyrie")
            .filter(|x| {
                x.attack_progress_pct <= v.attack_progress_pct + 1e-9
                    && x.benign_killed_pct <= v.benign_killed_pct + 1e-9
                    && x.benign_slowdown_pct <= v.benign_slowdown_pct + 1e-9
            })
            .count();
        assert_eq!(competitors, 0, "a baseline dominated valkyrie");
    }

    #[test]
    fn dram_refresh_prevents_flips_but_valkyrie_matches_it() {
        let r = run(&quick());
        let flips = |name: &str| {
            r.rowhammer
                .iter()
                .find(|(p, _)| p.contains(name))
                .unwrap()
                .1
        };
        assert!(flips("warning") >= 29);
        assert_eq!(flips("ANVIL"), 0);
        // Valkyrie terminates the hammer before it accumulates one flip.
        assert!(flips("valkyrie") <= 1);
    }

    #[test]
    fn batched_fleet_eval_is_equivalent_to_isolated_replays() {
        let cfg = quick();
        let traces: Vec<Vec<Classification>> = (0..6)
            .map(|s| bursty_trace(120, &cfg, 0xF1EE7 + s))
            .collect();
        let verdicts: Vec<Vec<Classification>> = (0..6)
            .map(|s| iid_trace(120, cfg.verdict_fpr, 0xF1F + s))
            .collect();
        let trace_refs: Vec<&[Classification]> = traces.iter().map(Vec::as_slice).collect();
        let verdict_refs: Vec<&[Classification]> = verdicts.iter().map(Vec::as_slice).collect();
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            let fleet = valkyrie_eval_fleet(&trace_refs, &verdict_refs, cfg.n_star, 7, mode);
            for (i, eval) in fleet.iter().enumerate() {
                let alone = valkyrie_eval(&traces[i], &verdicts[i], cfg.n_star);
                assert_eq!(eval.terminated, alone.terminated, "trial {i}, {mode:?}");
                assert_eq!(eval.progress, alone.progress, "trial {i}, {mode:?}");
            }
        }
    }

    #[test]
    fn pool_execution_reproduces_the_scoped_table() {
        let scoped = run(&quick());
        let pooled = run(&ResponsesConfig {
            execution: ExecutionMode::Pool,
            ..quick()
        });
        assert_eq!(scoped.rows, pooled.rows);
        assert_eq!(scoped.rowhammer, pooled.rowhammer);
    }

    #[test]
    fn report_renders_every_policy() {
        let r = run(&quick());
        for p in POLICIES {
            assert!(r.report.contains(p), "missing {p}");
        }
        assert!(r.report.contains("ANVIL"));
    }
}
