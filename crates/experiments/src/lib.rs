//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation.
//!
//! One binary per artefact (`cargo run --release -p valkyrie-experiments
//! --bin fig4a` …); each binary delegates to a `run_*` function here that
//! returns the formatted result, so integration tests and benches can run
//! scaled-down versions of the same code.
//!
//! | Artefact | Function | Binary |
//! |---|---|---|
//! | Fig. 1 (efficacy vs. measurements) | [`fig1::run`] | `fig1` |
//! | Table I (response-strategy survey) | [`table1::run`] | `table1` |
//! | Table II (resource vs. progress) | [`table2::run`] | `table2` |
//! | Table III (case-study configs) | [`table3::run`] | `table3` |
//! | Fig. 4a-f (micro-architectural attacks) | [`fig4`] | `fig4a` … `fig4f` |
//! | Fig. 5a/5b (FP slowdowns, migration) | [`fig5`] | `fig5a`, `fig5b` |
//! | Table IV (per-platform slowdowns) | [`table4::run`] | `table4` |
//! | Fig. 6a-c (rowhammer/ransomware/miner) | [`fig6`] | `fig6a` … `fig6c` |
//! | §V-C worked example | [`analytic::run`] | `analytic` |
//! | Design-choice ablations | [`ablations::run`] | `ablations` |
//! | Table I, quantified (ours) | [`responses::run`] | `responses` |
//! | Evasion study (ours) | [`evasion::run`] | `evasion` |
//! | Two-level detection (ours) | [`ensemble::run`] | `ensemble` |
//! | Multi-tenant machine (ours) | [`multi_tenant::run`] | `multi_tenant` |
//! | Fleet-scale cluster (ours) | [`fleet_scale::run`] | `fleet_scale` |
//! | Noise-flood sweep (ours) | [`flood::run`] | `flood` |
//! | Adaptive best-response ranking (ours) | [`adaptive::run`] | `adaptive` |

pub mod ablations;
pub mod adaptive;
pub mod analytic;
pub mod cache;
pub mod ensemble;
pub mod evasion;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fleet_scale;
pub mod flood;
pub mod harness;
pub mod multi_tenant;
pub mod responses;
pub mod scenario;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

pub use harness::TextTable;
pub use scenario::{AugmentedRun, CpuLever, ScenarioConfig};
