//! Ablation studies over Valkyrie's design choices.
//!
//! The paper makes three configuration choices per deployment: the penalty /
//! compensation assessment functions (`F_p`, `F_c`), the actuator law, and
//! the measurement requirement `N*` (plus a resource floor bounding
//! worst-case slowdowns). Each sweep here quantifies the security /
//! performance trade-off of one knob using the Section V-C slowdown model:
//! *attack slowdown* (higher = better security) against *false-positive
//! slowdown* (lower = better performance), on identical inference traces.

use crate::harness::{pct, TextTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valkyrie_core::{
    simulate_response, AssessmentFn, Classification, ResourceKind, ShareActuator, ThrottleLaw,
};

/// One ablation data point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The varied configuration.
    pub config: String,
    /// Slowdown of an always-flagged attack over its detection window.
    pub attack_slowdown_pct: f64,
    /// Mean slowdown of a benign process flagged in 10 % of epochs.
    pub fp_slowdown_pct: f64,
}

/// Structured result of one sweep.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Sweep name.
    pub name: &'static str,
    /// Data points.
    pub rows: Vec<AblationRow>,
    /// Rendered report.
    pub report: String,
}

fn fp_trace(epochs: usize, fp_rate: f64, seed: u64) -> Vec<Classification> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..epochs)
        .map(|_| {
            if rng.gen::<f64>() < fp_rate {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        })
        .collect()
}

fn measure(
    n_star: u64,
    fp: AssessmentFn,
    fc: AssessmentFn,
    actuator: ShareActuator,
    horizon: usize,
) -> (f64, f64) {
    let attack = simulate_response(
        n_star,
        &vec![Classification::Malicious; n_star as usize],
        fp,
        fc,
        actuator,
    );
    // Average the FP slowdown over several random benign traces.
    let mut fp_sum = 0.0;
    const TRIALS: u64 = 8;
    for seed in 0..TRIALS {
        let trace = fp_trace(horizon, 0.10, 0xAB1A + seed);
        let t = simulate_response(n_star, &trace, fp, fc, actuator);
        fp_sum += t.cpu_slowdown_percent();
    }
    (attack.cpu_slowdown_percent(), fp_sum / TRIALS as f64)
}

fn render(name: &'static str, header: &str, rows: Vec<AblationRow>) -> AblationResult {
    let mut t = TextTable::new(vec![header, "attack slowdown", "FP slowdown (10% FP)"]);
    for r in &rows {
        t.row(vec![
            r.config.clone(),
            pct(r.attack_slowdown_pct),
            pct(r.fp_slowdown_pct),
        ]);
    }
    let report = format!("Ablation — {name}\n\n{}", t.render());
    AblationResult { name, rows, report }
}

/// Sweep the penalty/compensation assessment functions.
pub fn assessment_functions() -> AblationResult {
    let actuator = ShareActuator::cpu_percent_point(0.10, 0.01);
    let mut rows = Vec::new();
    for (label, f) in [
        ("incremental (x + 1)", AssessmentFn::incremental()),
        ("linear (1.5x + 1)", AssessmentFn::linear(1.5, 1.0)),
        ("linear (x + 2)", AssessmentFn::linear(1.0, 2.0)),
        ("exponential (2ix + 1)", AssessmentFn::exponential(2.0)),
    ] {
        let (attack, fp) = measure(30, f, f, actuator, 200);
        rows.push(AblationRow {
            config: label.to_string(),
            attack_slowdown_pct: attack,
            fp_slowdown_pct: fp,
        });
    }
    render("assessment functions Fp = Fc", "Fp / Fc", rows)
}

/// Sweep the actuator throttling law.
pub fn actuator_laws() -> AblationResult {
    let mut rows = Vec::new();
    for (label, law) in [
        (
            "10 pp per threat unit",
            ThrottleLaw::PercentPointPerUnit { step: 0.10 },
        ),
        (
            "x0.9 per threat unit",
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
        ),
        (
            "Eq. 8 weight (gamma 0.1)",
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ),
        ("halve per increase", ThrottleLaw::HalvePerEvent),
    ] {
        let actuator = ShareActuator::new(ResourceKind::Cpu, law, 0.01);
        let (attack, fp) = measure(
            30,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            actuator,
            200,
        );
        rows.push(AblationRow {
            config: label.to_string(),
            attack_slowdown_pct: attack,
            fp_slowdown_pct: fp,
        });
    }
    render("actuator law", "law", rows)
}

/// Sweep the measurement requirement `N*` (the efficacy/termination knob).
///
/// With one-shot monitoring a benign process that is still being flagged
/// occasionally will face its terminable verdict after `N*` measurements:
/// the smaller `N*`, the higher the chance a false positive lands exactly
/// on the verdict epoch and the process is killed — which the slowdown
/// metric registers as a near-total progress loss. This is the paper's
/// R2 argument for deriving `N*` from a *sufficient* detection efficacy
/// rather than terminating early.
pub fn n_star_sensitivity() -> AblationResult {
    let actuator = ShareActuator::cpu_percent_point(0.10, 0.01);
    let mut rows = Vec::new();
    for n_star in [5u64, 15, 30, 60, 120] {
        let (attack, fp) = measure(
            n_star,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            actuator,
            240,
        );
        rows.push(AblationRow {
            config: format!("N* = {n_star}"),
            attack_slowdown_pct: attack,
            fp_slowdown_pct: fp,
        });
    }
    render("measurement requirement N*", "N*", rows)
}

/// Sweep the resource floor (the configurable worst-case slowdown bound).
pub fn resource_floor() -> AblationResult {
    let mut rows = Vec::new();
    for floor in [0.01, 0.05, 0.10, 0.25, 0.50] {
        let actuator = ShareActuator::cpu_percent_point(0.10, floor);
        let (attack, fp) = measure(
            30,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            actuator,
            200,
        );
        rows.push(AblationRow {
            config: format!("floor = {:.0}%", floor * 100.0),
            attack_slowdown_pct: attack,
            fp_slowdown_pct: fp,
        });
    }
    render("minimum resource share (slowdown bound)", "floor", rows)
}

/// Runs all four sweeps.
pub fn run() -> String {
    let mut out = String::from(
        "Design-choice ablations (Section V-C slowdown model; attack = flagged\n\
         every epoch until N*, benign = flagged in 10% of epochs)\n\n",
    );
    for r in [
        assessment_functions(),
        actuator_laws(),
        n_star_sensitivity(),
        resource_floor(),
    ] {
        out.push_str(&r.report);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_penalties_throttle_attacks_harder() {
        let r = assessment_functions();
        let incremental = r.rows[0].attack_slowdown_pct;
        let exponential = r.rows[3].attack_slowdown_pct;
        assert!(
            exponential >= incremental,
            "exp {exponential} vs inc {incremental}"
        );
    }

    #[test]
    fn larger_n_star_protects_false_positives() {
        let r = n_star_sensitivity();
        // Small N* lets a stray false positive land on the terminable
        // verdict and kill the benign process (registered as near-total
        // progress loss); large N* gives the verdict enough evidence.
        let first = r.rows.first().unwrap().fp_slowdown_pct; // N* = 5
        let last = r.rows.last().unwrap().fp_slowdown_pct; // N* = 120
        assert!(
            last < first,
            "larger N* should reduce FP damage: {first} -> {last}"
        );
    }

    #[test]
    fn higher_floor_bounds_both_slowdowns() {
        let r = resource_floor();
        let tight = &r.rows[0]; // 1% floor
        let loose = r.rows.last().unwrap(); // 50% floor
        assert!(loose.attack_slowdown_pct < tight.attack_slowdown_pct);
        assert!(loose.fp_slowdown_pct <= tight.fp_slowdown_pct + 1e-9);
        // The floor caps the attack slowdown at (1 - floor) of the window
        // (plus the unthrottled first epoch).
        assert!(loose.attack_slowdown_pct <= 50.0 + 1e-9);
    }

    #[test]
    fn report_renders_all_sweeps() {
        let s = run();
        for key in ["assessment", "actuator", "N*", "floor"] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
