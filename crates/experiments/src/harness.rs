//! Plain-text table/series formatting shared by all experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use valkyrie_experiments::TextTable;
/// let mut t = TextTable::new(vec!["x", "y"]);
/// t.row(vec!["1".into(), "2".into()]);
/// let s = t.render();
/// assert!(s.contains('1') && s.contains('y'));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:width$}", cell, width = widths[i] + 2);
                let _ = i;
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(rule.min(cols * 40)));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with `d` decimals.
pub fn fmt(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Geometric mean of positive-shifted values: the paper reports geometric
/// means of slowdown percentages, which can be ~0; we shift by 1 % to keep
/// the mean defined, matching common benchmarking practice.
pub fn geo_mean_pct(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| (v.max(0.0) + 1.0).ln()).sum();
    (log_sum / values.len() as f64).exp() - 1.0
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["1".into(), "22".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        for cell in ["a", "bb", "1", "22", "333", "4"] {
            assert!(s.contains(cell), "missing {cell} in\n{s}");
        }
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        let g = geo_mean_pct(&[0.0, 0.0]);
        assert!(g.abs() < 1e-12);
        let g = geo_mean_pct(&[3.0, 3.0]);
        assert!((g - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt(1.234, 2), "1.23");
        assert_eq!(pct(12.34), "12.3%");
    }
}
