//! Adaptive best-response study: rank response laws by *worst-case* efficacy.
//!
//! The evasion study ([`crate::evasion`]) sweeps a fixed roster of attacker
//! strategies — an *average-case* view of the response's robustness. This
//! study closes the loop: per response law it runs a deterministic
//! best-response search (exhaustive grid + coordinate refinement, from
//! `valkyrie_workloads::adaptive`) over the parameters of a *learning*
//! attacker, and reports the law's efficacy **floor** — the least slowdown
//! any attacker in the searched family can be held to.
//!
//! Two attacker families are searched:
//!
//! * Against the binary observe path (five [`ThrottleLaw`] variants, each
//!   under incremental and exponential penalty hardening) an
//!   [`IntensityModulator`]: graded effort with share-triggered hysteresis
//!   and a scheduled quiet phase around the attacker's `N*` guess.
//! * Against the mass path's [`EscalationLadder`] configurations a
//!   [`MassRider`]: effort chosen by inverting the detector response so the
//!   expected fused mass rides just below an escalation rung.
//!
//! A second table exercises the [`LawProbe`]: a calibrated three-epoch burst
//! against each law, checking that the probe re-identifies the deployed
//! family and parameter from share responses alone, plus the floor achieved
//! by the full probe→calibrate→modulate closed loop.

use crate::harness::{fmt, pct, TextTable};
use valkyrie_core::evasion::{
    run_adaptive, run_adaptive_mass, run_evasion, AdaptiveScenario, AdaptiveStrategy,
    ConstantIntensity, DetectorModel, EvasionOutcome, EvasionScenario, IntensityModulator,
    LawProbe, MassRider,
};
use valkyrie_core::monitor::{EscalationLadder, EscalationLevel};
use valkyrie_core::{
    AssessmentFn, EngineConfig, FusionConfig, ResourceKind, ShareActuator, ThrottleLaw,
};
use valkyrie_workloads::{best_response, ParamSpec};

/// Configuration of the adaptive best-response study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Valkyrie's measurement requirement.
    pub n_star: u64,
    /// Observation horizon, in epochs.
    pub horizon: u64,
    /// Detector true-positive rate at full attack intensity.
    pub tpr: f64,
    /// Detector false-positive rate at zero intensity.
    pub fpr: f64,
    /// Confidence jitter half-width for the mass path.
    pub noise: f64,
    /// Trials per objective evaluation.
    pub trials: u64,
    /// Shrinks the search grids and refinement schedule for CI.
    pub quick: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            n_star: 30,
            horizon: 120,
            tpr: 0.90,
            fpr: 0.04,
            noise: 0.05,
            trials: 12,
            quick: false,
        }
    }
}

impl AdaptiveConfig {
    /// The CI configuration: coarser grids, shorter horizon, fewer trials.
    pub fn quick() -> Self {
        Self {
            horizon: 80,
            trials: 6,
            quick: true,
            ..Self::default()
        }
    }
}

/// One response law's worst-case ranking entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LawRow {
    /// Defense label (law + penalty, or ladder configuration).
    pub label: String,
    /// Efficacy floor against the best-response attacker, percent of the
    /// horizon denied (higher = stronger law).
    pub worst_floor_pct: f64,
    /// Mean progress of the best-response attacker found.
    pub adaptive_progress: f64,
    /// Fraction of trials in which that attacker was terminated.
    pub killed_pct: f64,
    /// Mean termination epoch among terminated trials (NaN when none).
    pub mean_kill_epoch: f64,
    /// The winning parameter vector, in spec order.
    pub best_params: Vec<f64>,
    /// Human-readable description of the winning strategy.
    pub strategy_desc: String,
    /// The strongest *fixed* strategy from the evasion roster.
    pub fixed_best_label: String,
    /// Efficacy floor against that fixed strategy.
    pub fixed_best_floor_pct: f64,
    /// How many efficacy points the adaptive attacker shaves off the
    /// average-case (fixed-roster) floor.
    pub gap_pts: f64,
}

/// One law-probe identification entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRow {
    /// Deployed law label.
    pub label: String,
    /// Family name the probe estimated ("none" if it found nothing).
    pub family: String,
    /// Estimated law parameter.
    pub estimated: f64,
    /// True law parameter.
    pub truth: f64,
    /// Whether family matched and the parameter was within 0.02.
    pub hit: bool,
    /// Efficacy floor against the probe→calibrate→modulate closed loop.
    pub closed_loop_floor_pct: f64,
}

/// Structured result of the adaptive study.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// Ranking rows, sorted by descending worst-case floor.
    pub rows: Vec<LawRow>,
    /// Probe identification rows, one per law family.
    pub probe: Vec<ProbeRow>,
    /// Rendered report.
    pub report: String,
}

/// Which observe path a defense runs on.
#[derive(Debug, Clone)]
enum DefensePath {
    /// Binary classifications through `ValkyrieEngine::observe`.
    Binary,
    /// Fused-mass confidences through `observe_mass`, under this ladder.
    Ladder(EscalationLadder),
}

#[derive(Debug, Clone)]
struct Defense {
    label: String,
    config: EngineConfig,
    path: DefensePath,
}

/// The five canonical throttle-law configurations under study.
fn laws() -> [(&'static str, ThrottleLaw); 5] {
    [
        (
            "pp 0.10/unit",
            ThrottleLaw::PercentPointPerUnit { step: 0.10 },
        ),
        (
            "mult 0.90/unit",
            ThrottleLaw::MultiplicativePerUnit { factor: 0.90 },
        ),
        (
            "mult 0.70/event",
            ThrottleLaw::MultiplicativePerEvent { factor: 0.70 },
        ),
        ("halve/event", ThrottleLaw::HalvePerEvent),
        ("sched g=0.10", ThrottleLaw::SchedulerWeight { gamma: 0.10 }),
    ]
}

fn binary_config(n_star: u64, law: ThrottleLaw, fp: AssessmentFn) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(fp)
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::new(ResourceKind::Cpu, law, 0.01))
        .build()
        .expect("static config is valid")
}

fn ladder_config(n_star: u64, ladder: EscalationLadder) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .fusion(FusionConfig {
            ladder,
            ..FusionConfig::default()
        })
        .build()
        .expect("static config is valid")
}

fn defenses(cfg: &AdaptiveConfig) -> Vec<Defense> {
    let penalties = [
        ("inc", AssessmentFn::incremental()),
        ("exp2", AssessmentFn::exponential(2.0)),
    ];
    let mut out = Vec::new();
    for (name, law) in laws() {
        for (pname, fp) in &penalties {
            out.push(Defense {
                label: format!("{name} + {pname}"),
                config: binary_config(cfg.n_star, law, *fp),
                path: DefensePath::Binary,
            });
        }
    }
    for (name, ladder) in [
        ("ladder graduated", EscalationLadder::graduated()),
        ("ladder binary", EscalationLadder::BINARY),
    ] {
        out.push(Defense {
            label: name.to_string(),
            config: ladder_config(cfg.n_star, ladder),
            path: DefensePath::Ladder(ladder),
        });
    }
    out
}

/// Aggregate of one strategy's trials.
struct RunStats {
    progress: f64,
    killed_pct: f64,
    mean_kill_epoch: f64,
}

/// Averages `run(seed)` over the study's trial seeds.
fn collect(cfg: &AdaptiveConfig, mut run: impl FnMut(u64) -> EvasionOutcome) -> RunStats {
    let mut progress = 0.0;
    let mut killed = 0u64;
    let mut kill_epoch_sum = 0.0;
    for t in 0..cfg.trials {
        let out = run(0xADA + t);
        progress += out.progress;
        if let Some(epoch) = out.terminated_at {
            killed += 1;
            kill_epoch_sum += epoch as f64;
        }
    }
    let n = cfg.trials as f64;
    RunStats {
        progress: progress / n,
        killed_pct: 100.0 * killed as f64 / n,
        mean_kill_epoch: if killed > 0 {
            kill_epoch_sum / killed as f64
        } else {
            f64::NAN
        },
    }
}

/// Efficacy floor: the percentage of the horizon denied to the attacker.
fn floor_pct(progress: f64, horizon: u64) -> f64 {
    (1.0 - progress / horizon as f64) * 100.0
}

/// Runs one adaptive strategy against a defense over all trial seeds.
fn run_strategy(
    defense: &Defense,
    cfg: &AdaptiveConfig,
    detector: DetectorModel,
    strategy: &mut dyn AdaptiveStrategy,
) -> RunStats {
    collect(cfg, |seed| {
        let scenario = AdaptiveScenario::new(detector, cfg.horizon)
            .with_seed(seed)
            .with_noise(cfg.noise);
        match defense.path {
            DefensePath::Binary => run_adaptive(&defense.config, &scenario, strategy),
            DefensePath::Ladder(_) => run_adaptive_mass(&defense.config, &scenario, strategy),
        }
    })
}

/// Search space for the hysteresis modulator (binary path):
/// `[attack_intensity, pause_below, resume_above, quiet_frac, terminal]`.
fn modulator_specs(quick: bool) -> Vec<ParamSpec> {
    if quick {
        vec![
            ParamSpec::new("intensity", vec![0.6, 1.0]),
            ParamSpec::new("pause<", vec![0.2, 0.5]),
            ParamSpec::new("resume>=", vec![0.6, 0.9]),
            ParamSpec::new("quiet/N*", vec![0.5, 1.0, 4.0]),
            ParamSpec::new("terminal", vec![0.0, 0.1]),
        ]
    } else {
        vec![
            ParamSpec::new("intensity", vec![0.5, 0.75, 1.0]),
            ParamSpec::new("pause<", vec![0.1, 0.3, 0.5]),
            ParamSpec::new("resume>=", vec![0.5, 0.75, 0.95]),
            ParamSpec::new("quiet/N*", vec![0.4, 0.7, 1.0, 4.0]),
            ParamSpec::new("terminal", vec![0.0, 0.05, 0.15]),
        ]
    }
}

fn modulator_from(params: &[f64], n_star: u64) -> IntensityModulator {
    IntensityModulator::new(
        params[0],
        params[1],
        params[2],
        (params[3] * n_star as f64).round() as u64,
        params[4],
    )
}

fn modulator_desc(params: &[f64], n_star: u64) -> String {
    format!(
        "mod i{:.2} p{:.2} r{:.2} q@{} t{:.2}",
        params[0],
        params[1],
        params[2],
        (params[3] * n_star as f64).round() as u64,
        params[4]
    )
}

/// Search space for the mass rider (ladder path):
/// `[target_mass, quiet_frac, terminal_mass]`. The target grid is derived
/// from the deployed ladder's own rung boundaries.
fn rider_specs(ladder: &EscalationLadder, quick: bool) -> Vec<ParamSpec> {
    let mut targets = vec![
        ladder.ride_below(EscalationLevel::Throttle, 0.02),
        ladder.ride_below(EscalationLevel::Throttle, 0.10),
        ladder.ride_below(EscalationLevel::Kill, 0.02),
        (ladder.compensate_below - 0.02).max(0.0),
    ];
    targets.sort_by(|a, b| a.partial_cmp(b).expect("boundaries are finite"));
    targets.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    vec![
        ParamSpec::new("target", targets),
        ParamSpec::new(
            "quiet/N*",
            if quick {
                vec![1.0, 4.0]
            } else {
                vec![0.5, 1.0, 4.0]
            },
        ),
        ParamSpec::new("terminal", vec![0.0, 0.3]),
    ]
}

fn rider_from(params: &[f64], detector: DetectorModel, n_star: u64) -> MassRider {
    MassRider::new(
        detector,
        params[0],
        (params[1] * n_star as f64).round() as u64,
        params[2],
    )
}

fn rider_desc(params: &[f64], n_star: u64) -> String {
    format!(
        "ride m{:.2} q@{} t{:.2}",
        params[0],
        (params[1] * n_star as f64).round() as u64,
        params[2]
    )
}

/// Ranks one defense: fixed-roster baseline, then the best-response search.
fn rank_defense(defense: &Defense, cfg: &AdaptiveConfig, detector: DetectorModel) -> LawRow {
    // 1. The strongest fixed strategy from the evasion roster, replayed on
    //    the same seeds (average-case baseline).
    let mut fixed_best: Option<(String, f64)> = None;
    for strategy in crate::evasion::strategies(cfg.n_star) {
        let progress = match defense.path {
            DefensePath::Binary => {
                collect(cfg, |seed| {
                    let scenario =
                        EvasionScenario::new(strategy, detector, cfg.horizon).with_seed(seed);
                    run_evasion(&defense.config, &scenario)
                })
                .progress
            }
            DefensePath::Ladder(_) => {
                let mut adapter = strategy;
                run_strategy(defense, cfg, detector, &mut adapter).progress
            }
        };
        let better = fixed_best.as_ref().is_none_or(|(_, best)| progress > *best);
        if better {
            fixed_best = Some((crate::evasion::label(strategy), progress));
        }
    }
    let (fixed_best_label, fixed_progress) = fixed_best.expect("roster is non-empty");

    // 2. Best-response search over the adaptive family for this path.
    let rounds = if cfg.quick { 1 } else { 2 };
    let (found, strategy_desc, stats) = match &defense.path {
        DefensePath::Binary => {
            let specs = modulator_specs(cfg.quick);
            let mut eval = |p: &[f64]| {
                let mut m = modulator_from(p, cfg.n_star);
                run_strategy(defense, cfg, detector, &mut m).progress
            };
            let found = best_response(&specs, rounds, &mut eval);
            let mut winner = modulator_from(&found.params, cfg.n_star);
            let stats = run_strategy(defense, cfg, detector, &mut winner);
            let desc = modulator_desc(&found.params, cfg.n_star);
            (found, desc, stats)
        }
        DefensePath::Ladder(ladder) => {
            let specs = rider_specs(ladder, cfg.quick);
            let mut eval = |p: &[f64]| {
                let mut r = rider_from(p, detector, cfg.n_star);
                run_strategy(defense, cfg, detector, &mut r).progress
            };
            let found = best_response(&specs, rounds, &mut eval);
            let mut winner = rider_from(&found.params, detector, cfg.n_star);
            let stats = run_strategy(defense, cfg, detector, &mut winner);
            let desc = rider_desc(&found.params, cfg.n_star);
            (found, desc, stats)
        }
    };

    let worst_floor_pct = floor_pct(stats.progress, cfg.horizon);
    let fixed_best_floor_pct = floor_pct(fixed_progress, cfg.horizon);
    LawRow {
        label: defense.label.clone(),
        worst_floor_pct,
        adaptive_progress: stats.progress,
        killed_pct: stats.killed_pct,
        mean_kill_epoch: stats.mean_kill_epoch,
        best_params: found.params,
        strategy_desc,
        fixed_best_label,
        fixed_best_floor_pct,
        gap_pts: fixed_best_floor_pct - worst_floor_pct,
    }
}

/// Probe identification: a calibrated burst against each law under a perfect
/// detector, plus the floor the full closed loop achieves under the study
/// detector.
fn probe_table(cfg: &AdaptiveConfig, detector: DetectorModel) -> Vec<ProbeRow> {
    laws()
        .into_iter()
        .map(|(name, law)| {
            let config = binary_config(cfg.n_star, law, AssessmentFn::incremental());
            let mut probe = LawProbe::new(3, ConstantIntensity(0.0));
            let scenario = AdaptiveScenario::new(DetectorModel::perfect(), 8);
            let _ = run_adaptive(&config, &scenario, &mut probe);
            let (family, estimated, hit) = match probe.estimate() {
                Some(est) => (
                    est.law.family().name().to_string(),
                    est.law.parameter(),
                    est.law.family() == law.family()
                        && (est.law.parameter() - law.parameter()).abs() < 0.02,
                ),
                None => ("none".to_string(), f64::NAN, false),
            };
            let mut closed =
                LawProbe::new(3, IntensityModulator::new(1.0, 0.3, 0.8, cfg.n_star, 0.0));
            let stats = collect(cfg, |seed| {
                let scenario = AdaptiveScenario::new(detector, cfg.horizon).with_seed(seed);
                run_adaptive(&config, &scenario, &mut closed)
            });
            ProbeRow {
                label: name.to_string(),
                family,
                estimated,
                truth: law.parameter(),
                hit,
                closed_loop_floor_pct: floor_pct(stats.progress, cfg.horizon),
            }
        })
        .collect()
}

/// Runs the full adaptive best-response study.
pub fn run(cfg: &AdaptiveConfig) -> AdaptiveResult {
    let detector = DetectorModel::new(cfg.tpr, cfg.fpr).expect("rates validated by config");

    let mut rows: Vec<LawRow> = defenses(cfg)
        .iter()
        .map(|d| rank_defense(d, cfg, detector))
        .collect();
    rows.sort_by(|a, b| {
        b.worst_floor_pct
            .partial_cmp(&a.worst_floor_pct)
            .expect("floors are finite")
            .then_with(|| a.label.cmp(&b.label))
    });

    let probe = probe_table(cfg, detector);

    let mut t1 = TextTable::new(vec![
        "defense",
        "worst floor",
        "best response",
        "killed",
        "kill epoch",
        "best fixed",
        "fixed floor",
        "gap",
    ]);
    for r in &rows {
        t1.row(vec![
            r.label.clone(),
            pct(r.worst_floor_pct),
            r.strategy_desc.clone(),
            pct(r.killed_pct),
            if r.mean_kill_epoch.is_nan() {
                "-".into()
            } else {
                fmt(r.mean_kill_epoch, 1)
            },
            r.fixed_best_label.clone(),
            pct(r.fixed_best_floor_pct),
            format!("{:+.1}", r.gap_pts),
        ]);
    }

    let mut t2 = TextTable::new(vec![
        "deployed law",
        "probe estimate",
        "est param",
        "true param",
        "hit",
        "closed-loop floor",
    ]);
    for r in &probe {
        t2.row(vec![
            r.label.clone(),
            r.family.clone(),
            if r.estimated.is_nan() {
                "-".into()
            } else {
                fmt(r.estimated, 3)
            },
            fmt(r.truth, 3),
            if r.hit { "yes".into() } else { "NO".into() },
            pct(r.closed_loop_floor_pct),
        ]);
    }

    let report = format!(
        "Adaptive best-response study — N* = {}, horizon {} epochs, detector TPR {:.0}% / \
         FPR {:.0}%, mass noise +-{:.2}, {} trials per evaluation\n\n\
         1. Worst-case ranking — per defense, the efficacy floor against the best \
         adaptive attacker found (grid + coordinate descent), vs the strongest fixed \
         strategy from the evasion roster ('gap' = efficacy points the learner shaves \
         off the average-case floor):\n\n{}\n\
         2. Law probe — family/parameter re-identified from a 3-epoch calibrated burst, \
         and the floor against the probe->calibrate->modulate closed loop:\n\n{}",
        cfg.n_star,
        cfg.horizon,
        cfg.tpr * 100.0,
        cfg.fpr * 100.0,
        cfg.noise,
        cfg.trials,
        t1.render(),
        t2.render()
    );

    AdaptiveResult {
        rows,
        probe,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> AdaptiveResult {
        run(&AdaptiveConfig::quick())
    }

    #[test]
    fn ranking_covers_all_laws_and_ladders() {
        let r = result();
        assert_eq!(r.rows.len(), 12);
        for key in [
            "pp 0.10/unit + inc",
            "pp 0.10/unit + exp2",
            "mult 0.90/unit + inc",
            "mult 0.70/event + exp2",
            "halve/event + inc",
            "sched g=0.10 + exp2",
            "ladder graduated",
            "ladder binary",
        ] {
            assert!(
                r.rows.iter().any(|row| row.label == key),
                "missing row {key}"
            );
        }
    }

    #[test]
    fn rows_are_sorted_by_descending_worst_case_floor() {
        let r = result();
        for pair in r.rows.windows(2) {
            assert!(
                pair[0].worst_floor_pct >= pair[1].worst_floor_pct,
                "{} before {}",
                pair[0].label,
                pair[1].label
            );
        }
    }

    #[test]
    fn best_response_measurably_beats_every_fixed_strategy_somewhere() {
        let r = result();
        let best = r
            .rows
            .iter()
            .max_by(|a, b| a.gap_pts.partial_cmp(&b.gap_pts).unwrap())
            .unwrap();
        assert!(
            best.gap_pts > 5.0,
            "no defense shows a meaningful adaptive gap (best {} at {:.1})",
            best.label,
            best.gap_pts
        );
    }

    #[test]
    fn ladders_are_exploitable_by_rung_riding() {
        let r = result();
        for label in ["ladder graduated", "ladder binary"] {
            let row = r.rows.iter().find(|row| row.label == label).unwrap();
            // The rider holds mass below the kill rung: never terminated,
            // and it clears a large share of the horizon.
            assert_eq!(row.killed_pct, 0.0, "{label} killed the rider");
            assert!(
                row.worst_floor_pct < row.fixed_best_floor_pct,
                "{label}: rider did not beat the fixed roster"
            );
        }
    }

    #[test]
    fn probe_identifies_every_law_family() {
        let r = result();
        assert_eq!(r.probe.len(), 5);
        for row in &r.probe {
            assert!(row.hit, "probe missed {}: got {}", row.label, row.family);
        }
    }

    #[test]
    fn report_contains_both_sections_and_is_deterministic() {
        let a = result();
        for key in [
            "Worst-case ranking",
            "Law probe",
            "ladder graduated",
            "closed-loop floor",
        ] {
            assert!(a.report.contains(key), "missing {key}");
        }
        let b = result();
        assert_eq!(a.report, b.report);
    }
}
