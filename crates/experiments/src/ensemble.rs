//! Two-level detection, quantified (the Section VII recommendation).
//!
//! The paper's discussion points to multi-level detection (Ozsoy et al.) as
//! the way to harden a detector before augmenting it with Valkyrie. This
//! experiment measures what the composition actually buys on the Fig. 1
//! ransomware-vs-benign corpus:
//!
//! * a **screen** — a cheap pooled ANN with a lowered decision threshold
//!   (high recall, high FPR), the kind of model a resource-constrained
//!   deployment can afford every epoch;
//! * a **confirmer** — an expensive boosted-tree majority vote, precise but
//!   costly, consulted only on screened epochs;
//! * the **two-level pipeline** — final verdict is malicious only when both
//!   agree, so its FPR is bounded by the confirmer's while the confirmer
//!   runs on only the screen-positive fraction of epochs;
//! * a **majority panel** over all three model families, the
//!   mixture-of-experts shape of Karapoola et al.
//!
//! The report shows the efficacy of each configuration over the number of
//! measurements, plus the confirmer's duty cycle — the cost saving that
//! makes the expensive model deployable.

use crate::harness::{fmt, pct, TextTable};
use valkyrie_core::EfficacyCurve;
use valkyrie_detect::efficacy::{measure_efficacy, EfficacyGrid};
use valkyrie_ml::{BinaryClassifier, Standardizer};

/// Experiment parameters (mirrors [`crate::fig1::Fig1Config`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleConfig {
    /// Ransomware variants in the corpus.
    pub ransomware: usize,
    /// Benign programs in the corpus.
    pub benign: usize,
    /// Measurements per trace.
    pub trace_len: usize,
    /// Largest measurement count on the x-axis.
    pub grid_max: u32,
    /// Cap on per-measurement training samples.
    pub train_cap: usize,
    /// Screen decision threshold (below the usual 0.5: higher recall).
    pub screen_threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            ransomware: 67,
            benign: 77,
            trace_len: 80,
            grid_max: 75,
            train_cap: 4000,
            screen_threshold: 0.30,
            seed: 0xE5E,
        }
    }
}

impl EnsembleConfig {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Self {
            ransomware: 12,
            benign: 14,
            trace_len: 30,
            grid_max: 25,
            train_cap: 800,
            screen_threshold: 0.30,
            seed: 0xE5E,
        }
    }
}

/// Measured curves for every detector configuration.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// Cheap screen alone (lowered threshold).
    pub screen: EfficacyCurve,
    /// Expensive confirmer alone.
    pub confirmer: EfficacyCurve,
    /// Two-level pipeline (screen gates confirmer).
    pub two_level: EfficacyCurve,
    /// Majority panel over the three model families.
    pub panel: EfficacyCurve,
    /// Fraction of *benign* test traces on which the confirmer ran, per
    /// grid point (the two-level pipeline's cost metric on a mostly-benign
    /// fleet).
    pub confirmer_duty_cycle: Vec<(u32, f64)>,
    /// Rendered report.
    pub report: String,
}

fn pooled_mean(prefix: &[Vec<f64>]) -> Vec<f64> {
    let dim = prefix[0].len();
    let mut mean = vec![0.0; dim];
    for x in prefix {
        for (m, v) in mean.iter_mut().zip(x) {
            *m += v / prefix.len() as f64;
        }
    }
    mean
}

fn majority<C: BinaryClassifier>(model: &C, std: &Standardizer, prefix: &[Vec<f64>]) -> bool {
    let malicious = prefix
        .iter()
        .filter(|x| model.classify(&std.transform(x)))
        .count();
    2 * malicious > prefix.len()
}

/// Runs the two-level detection experiment.
pub fn run(config: &EnsembleConfig) -> EnsembleResult {
    // The corpus split and all three models are byte-for-byte the Fig. 1
    // artefacts (same corpus config, same capping, same pooled training
    // set), so pull them from the shared trained-model cache instead of
    // retraining.
    let models = crate::fig1::trained_models(&crate::fig1::Fig1Config {
        ransomware: config.ransomware,
        benign: config.benign,
        trace_len: config.trace_len,
        grid_max: config.grid_max,
        train_cap: config.train_cap,
        seed: config.seed,
    });
    let test = &models.test;
    let standardizer = &models.standardizer;
    let (svm, gbdt, ann) = (&models.svm, &models.xgb, &models.small);

    let screen_fires = |p: &[Vec<f64>]| {
        ann.predict_proba(&standardizer.transform(&pooled_mean(p))) >= config.screen_threshold
    };
    let confirm_fires = |p: &[Vec<f64>]| majority(gbdt, standardizer, p);

    let grid = EfficacyGrid::new((1..=config.grid_max).step_by(2).collect());
    let screen = measure_efficacy(test, &grid, screen_fires).expect("non-empty grid");
    let confirmer = measure_efficacy(test, &grid, confirm_fires).expect("non-empty grid");
    let two_level =
        measure_efficacy(test, &grid, |p| screen_fires(p) && confirm_fires(p)).expect("grid");
    let panel = measure_efficacy(test, &grid, |p| {
        let votes = usize::from(screen_fires(p))
            + usize::from(majority(svm, standardizer, p))
            + usize::from(confirm_fires(p));
        votes >= 2
    })
    .expect("non-empty grid");

    // Duty cycle: the confirmer runs only when the screen fires. Measured
    // on the *benign* traces — a deployed fleet is overwhelmingly benign,
    // so this is the fraction of epochs the expensive model actually costs.
    let benign_seqs: Vec<&Vec<Vec<f64>>> = test
        .sequences
        .iter()
        .zip(&test.labels)
        .filter(|(_, &label)| label == 0.0)
        .map(|(seq, _)| seq)
        .collect();
    let confirmer_duty_cycle: Vec<(u32, f64)> = grid
        .points()
        .iter()
        .map(|&n| {
            let fired = benign_seqs
                .iter()
                .filter(|seq| {
                    let take = (n as usize).min(seq.len());
                    screen_fires(&seq[..take])
                })
                .count();
            (n, fired as f64 / benign_seqs.len().max(1) as f64)
        })
        .collect();

    let report = render(
        config,
        &screen,
        &confirmer,
        &two_level,
        &panel,
        &confirmer_duty_cycle,
    );
    EnsembleResult {
        screen,
        confirmer,
        two_level,
        panel,
        confirmer_duty_cycle,
        report,
    }
}

fn render(
    config: &EnsembleConfig,
    screen: &EfficacyCurve,
    confirmer: &EfficacyCurve,
    two_level: &EfficacyCurve,
    panel: &EfficacyCurve,
    duty: &[(u32, f64)],
) -> String {
    let mut t = TextTable::new(vec![
        "measurements",
        "FPR screen",
        "FPR confirmer",
        "FPR two-level",
        "FPR panel",
        "F1 two-level",
        "confirmer duty (benign)",
    ]);
    for (i, p) in screen.points().iter().enumerate() {
        t.row(vec![
            p.measurements.to_string(),
            fmt(p.fpr, 3),
            fmt(confirmer.points()[i].fpr, 3),
            fmt(two_level.points()[i].fpr, 3),
            fmt(panel.points()[i].fpr, 3),
            fmt(two_level.points()[i].f1, 3),
            pct(duty[i].1 * 100.0),
        ]);
    }
    format!(
        "Two-level detection (Section VII) — screen threshold {:.2}\n\
         corpus: {} ransomware + {} benign traces of {} measurements\n\n{}",
        config.screen_threshold,
        config.ransomware,
        config.benign,
        config.trace_len,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_fpr_never_exceeds_either_stage() {
        let r = run(&EnsembleConfig::quick());
        for (i, p) in r.two_level.points().iter().enumerate() {
            assert!(p.fpr <= r.screen.points()[i].fpr + 1e-9);
            assert!(p.fpr <= r.confirmer.points()[i].fpr + 1e-9);
        }
    }

    #[test]
    fn confirmer_duty_cycle_is_a_fraction() {
        let r = run(&EnsembleConfig::quick());
        for &(_, d) in &r.confirmer_duty_cycle {
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn two_level_keeps_useful_recall() {
        let r = run(&EnsembleConfig::quick());
        let last = r.two_level.points().last().unwrap();
        assert!(last.f1 > 0.6, "two-level F1 collapsed: {}", last.f1);
    }

    #[test]
    fn report_renders_all_configurations() {
        let r = run(&EnsembleConfig::quick());
        for key in ["screen", "confirmer", "two-level", "panel", "duty"] {
            assert!(r.report.contains(key), "missing {key}");
        }
    }
}
