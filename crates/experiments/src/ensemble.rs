//! Two-level detection, quantified (the Section VII recommendation).
//!
//! The paper's discussion points to multi-level detection (Ozsoy et al.) as
//! the way to harden a detector before augmenting it with Valkyrie. This
//! experiment measures what the composition actually buys on the Fig. 1
//! ransomware-vs-benign corpus:
//!
//! * a **screen** — a cheap pooled ANN with a lowered decision threshold
//!   (high recall, high FPR), the kind of model a resource-constrained
//!   deployment can afford every epoch;
//! * a **confirmer** — an expensive boosted-tree majority vote, precise but
//!   costly, consulted only on screened epochs;
//! * the **two-level pipeline** — final verdict is malicious only when both
//!   agree, so its FPR is bounded by the confirmer's while the confirmer
//!   runs on only the screen-positive fraction of epochs;
//! * a **majority panel** over all three model families, the
//!   mixture-of-experts shape of Karapoola et al.
//!
//! The report shows the efficacy of each configuration over the number of
//! measurements, plus the confirmer's duty cycle — the cost saving that
//! makes the expensive model deployable.

use crate::harness::{fmt, pct, TextTable};
use crate::multi_tenant::{self, FusionTier, MultiTenantConfig};
use valkyrie_core::{EfficacyCurve, FusionStats};
use valkyrie_detect::efficacy::{measure_efficacy, EfficacyGrid};
use valkyrie_ml::{BinaryClassifier, Standardizer};

/// Experiment parameters (mirrors [`crate::fig1::Fig1Config`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleConfig {
    /// Ransomware variants in the corpus.
    pub ransomware: usize,
    /// Benign programs in the corpus.
    pub benign: usize,
    /// Measurements per trace.
    pub trace_len: usize,
    /// Largest measurement count on the x-axis.
    pub grid_max: u32,
    /// Cap on per-measurement training samples.
    pub train_cap: usize,
    /// Screen decision threshold (below the usual 0.5: higher recall).
    pub screen_threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            ransomware: 67,
            benign: 77,
            trace_len: 80,
            grid_max: 75,
            train_cap: 4000,
            screen_threshold: 0.30,
            seed: 0xE5E,
        }
    }
}

impl EnsembleConfig {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Self {
            ransomware: 12,
            benign: 14,
            trace_len: 30,
            grid_max: 25,
            train_cap: 800,
            screen_threshold: 0.30,
            seed: 0xE5E,
        }
    }
}

/// Measured curves for every detector configuration.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// Cheap screen alone (lowered threshold).
    pub screen: EfficacyCurve,
    /// Expensive confirmer alone.
    pub confirmer: EfficacyCurve,
    /// Two-level pipeline (screen gates confirmer).
    pub two_level: EfficacyCurve,
    /// Majority panel over the three model families.
    pub panel: EfficacyCurve,
    /// Fraction of *benign* test traces on which the confirmer ran, per
    /// grid point (the two-level pipeline's cost metric on a mostly-benign
    /// fleet).
    pub confirmer_duty_cycle: Vec<(u32, f64)>,
    /// Rendered report.
    pub report: String,
}

fn pooled_mean(prefix: &[Vec<f64>]) -> Vec<f64> {
    let dim = prefix[0].len();
    let mut mean = vec![0.0; dim];
    for x in prefix {
        for (m, v) in mean.iter_mut().zip(x) {
            *m += v / prefix.len() as f64;
        }
    }
    mean
}

fn majority<C: BinaryClassifier>(model: &C, std: &Standardizer, prefix: &[Vec<f64>]) -> bool {
    let malicious = prefix
        .iter()
        .filter(|x| model.classify(&std.transform(x)))
        .count();
    2 * malicious > prefix.len()
}

/// Runs the two-level detection experiment.
pub fn run(config: &EnsembleConfig) -> EnsembleResult {
    // The corpus split and all three models are byte-for-byte the Fig. 1
    // artefacts (same corpus config, same capping, same pooled training
    // set), so pull them from the shared trained-model cache instead of
    // retraining.
    let models = crate::fig1::trained_models(&crate::fig1::Fig1Config {
        ransomware: config.ransomware,
        benign: config.benign,
        trace_len: config.trace_len,
        grid_max: config.grid_max,
        train_cap: config.train_cap,
        seed: config.seed,
    });
    let test = &models.test;
    let standardizer = &models.standardizer;
    let (svm, gbdt, ann) = (&models.svm, &models.xgb, &models.small);

    let screen_fires = |p: &[Vec<f64>]| {
        ann.predict_proba(&standardizer.transform(&pooled_mean(p))) >= config.screen_threshold
    };
    let confirm_fires = |p: &[Vec<f64>]| majority(gbdt, standardizer, p);

    let grid = EfficacyGrid::new((1..=config.grid_max).step_by(2).collect());
    let screen = measure_efficacy(test, &grid, screen_fires).expect("non-empty grid");
    let confirmer = measure_efficacy(test, &grid, confirm_fires).expect("non-empty grid");
    let two_level =
        measure_efficacy(test, &grid, |p| screen_fires(p) && confirm_fires(p)).expect("grid");
    let panel = measure_efficacy(test, &grid, |p| {
        let votes = usize::from(screen_fires(p))
            + usize::from(majority(svm, standardizer, p))
            + usize::from(confirm_fires(p));
        votes >= 2
    })
    .expect("non-empty grid");

    // Duty cycle: the confirmer runs only when the screen fires. Measured
    // on the *benign* traces — a deployed fleet is overwhelmingly benign,
    // so this is the fraction of epochs the expensive model actually costs.
    let benign_seqs: Vec<&Vec<Vec<f64>>> = test
        .sequences
        .iter()
        .zip(&test.labels)
        .filter(|(_, &label)| label == 0.0)
        .map(|(seq, _)| seq)
        .collect();
    let confirmer_duty_cycle: Vec<(u32, f64)> = grid
        .points()
        .iter()
        .map(|&n| {
            let fired = benign_seqs
                .iter()
                .filter(|seq| {
                    let take = (n as usize).min(seq.len());
                    screen_fires(&seq[..take])
                })
                .count();
            (n, fired as f64 / benign_seqs.len().max(1) as f64)
        })
        .collect();

    let report = render(
        config,
        &screen,
        &confirmer,
        &two_level,
        &panel,
        &confirmer_duty_cycle,
    );
    EnsembleResult {
        screen,
        confirmer,
        two_level,
        panel,
        confirmer_duty_cycle,
        report,
    }
}

fn render(
    config: &EnsembleConfig,
    screen: &EfficacyCurve,
    confirmer: &EfficacyCurve,
    two_level: &EfficacyCurve,
    panel: &EfficacyCurve,
    duty: &[(u32, f64)],
) -> String {
    let mut t = TextTable::new(vec![
        "measurements",
        "FPR screen",
        "FPR confirmer",
        "FPR two-level",
        "FPR panel",
        "F1 two-level",
        "confirmer duty (benign)",
    ]);
    for (i, p) in screen.points().iter().enumerate() {
        t.row(vec![
            p.measurements.to_string(),
            fmt(p.fpr, 3),
            fmt(confirmer.points()[i].fpr, 3),
            fmt(two_level.points()[i].fpr, 3),
            fmt(panel.points()[i].fpr, 3),
            fmt(two_level.points()[i].f1, 3),
            pct(duty[i].1 * 100.0),
        ]);
    }
    format!(
        "Two-level detection (Section VII) — screen threshold {:.2}\n\
         corpus: {} ransomware + {} benign traces of {} measurements\n\n{}",
        config.screen_threshold,
        config.ransomware,
        config.benign,
        config.trace_len,
        t.render()
    )
}

/// The heterogeneous-cadence fusion sweep (the weighted-evidence follow-up
/// to the two-level pipeline above).
///
/// A fast-**weak** member answers every epoch; a slow-**strong** member
/// answers every [`FusionTier::slow_cadence`] epochs over its own publisher
/// and occasionally drops a window. The sweep varies the slow member's
/// fusion weight and reports epochs-to-kill and wrongful terminations per
/// weight, against a single fast-weak binary detector as the baseline —
/// quantifying what weighted-evidence fusion buys over trusting the cheap
/// detector alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionSweepConfig {
    /// Machine shape and the fast member's rates (`tpr` is the fast-weak
    /// per-epoch TPR). `ingest`/`fusion` are overwritten per sweep point.
    pub base: MultiTenantConfig,
    /// The slow-strong member; `slow_weight` is overwritten per point.
    pub tier: FusionTier,
    /// Slow-member fusion weights swept (the fast member stays at 1.0).
    pub slow_weights: [f64; 4],
    /// Terminable-verdict FPR of the *baseline* single fast-weak detector
    /// (its per-epoch weakness carried into the kill decision).
    pub baseline_verdict_fpr: f64,
}

impl Default for FusionSweepConfig {
    fn default() -> Self {
        Self {
            base: MultiTenantConfig {
                tpr: 0.70,
                ..MultiTenantConfig::default()
            },
            tier: FusionTier::default(),
            slow_weights: [0.5, 1.0, 2.0, 4.0],
            baseline_verdict_fpr: 0.20,
        }
    }
}

impl FusionSweepConfig {
    /// A scaled-down sweep for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            base: MultiTenantConfig {
                tpr: 0.70,
                ..MultiTenantConfig::quick()
            },
            tier: FusionTier {
                capacity: 1024,
                ..FusionTier::default()
            },
            ..Self::default()
        }
    }
}

/// One sweep point's outcome (`slow_weight` is `None` for the baseline
/// single fast-weak detector).
#[derive(Debug, Clone, PartialEq)]
pub struct FusionPoint {
    /// Fusion weight of the slow member; `None` = unfused baseline.
    pub slow_weight: Option<f64>,
    /// Attacks terminated (out of the configured count).
    pub attacks_terminated: usize,
    /// Mean epochs from an attack's arrival to its termination.
    pub mean_epochs_to_kill: f64,
    /// Benign processes wrongfully terminated, % of the fleet.
    pub benign_killed_pct: f64,
    /// Benign processes that ran to completion within the horizon.
    pub benign_completed: usize,
    /// Fusion-tier counters for this run.
    pub fusion: FusionStats,
}

/// Outcome of the whole weight sweep.
#[derive(Debug, Clone)]
pub struct FusionSweepResult {
    /// The single fast-weak binary detector (no fusion).
    pub baseline: FusionPoint,
    /// One point per entry in [`FusionSweepConfig::slow_weights`].
    pub points: Vec<FusionPoint>,
    /// Rendered report.
    pub report: String,
}

fn sweep_point(slow_weight: Option<f64>, r: &multi_tenant::MultiTenantResult) -> FusionPoint {
    FusionPoint {
        slow_weight,
        attacks_terminated: r.attacks_terminated,
        mean_epochs_to_kill: r.mean_epochs_to_kill,
        benign_killed_pct: r.benign_killed_pct,
        benign_completed: r.benign_completed,
        fusion: r.fusion_stats.clone(),
    }
}

/// Runs the heterogeneous-cadence fusion sweep.
pub fn run_fusion(cfg: &FusionSweepConfig) -> FusionSweepResult {
    // The baseline trusts the fast-weak member alone: its per-epoch rates
    // feed the legacy binary path, and its verdict-time efficacy is just
    // as weak (that is the point of needing the slow member).
    let baseline_cfg = MultiTenantConfig {
        verdict_tpr: cfg.base.tpr,
        verdict_fpr: cfg.baseline_verdict_fpr,
        ingest: None,
        fusion: None,
        ..cfg.base
    };
    let baseline = sweep_point(None, &multi_tenant::run(&baseline_cfg));

    let points: Vec<FusionPoint> = cfg
        .slow_weights
        .iter()
        .map(|&w| {
            let run_cfg = MultiTenantConfig {
                ingest: None,
                fusion: Some(FusionTier {
                    slow_weight: w,
                    ..cfg.tier
                }),
                ..cfg.base
            };
            sweep_point(Some(w), &multi_tenant::run(&run_cfg))
        })
        .collect();

    let report = render_fusion(cfg, &baseline, &points);
    FusionSweepResult {
        baseline,
        points,
        report,
    }
}

fn render_fusion(
    cfg: &FusionSweepConfig,
    baseline: &FusionPoint,
    points: &[FusionPoint],
) -> String {
    let mut t = TextTable::new(vec![
        "slow weight",
        "attacks killed",
        "epochs to kill",
        "benign killed",
        "completed",
        "verdicts",
        "stale-decayed",
        "escalations",
    ]);
    let mut row = |p: &FusionPoint| {
        t.row(vec![
            p.slow_weight
                .map_or_else(|| "(baseline)".into(), |w| format!("{w}")),
            format!("{}/{}", p.attacks_terminated, cfg.base.attacks),
            fmt(p.mean_epochs_to_kill, 1),
            pct(p.benign_killed_pct),
            p.benign_completed.to_string(),
            p.fusion.verdicts.to_string(),
            p.fusion.stale_decayed.to_string(),
            p.fusion.escalations.to_string(),
        ]);
    };
    row(baseline);
    for p in points {
        row(p);
    }
    format!(
        "Heterogeneous-cadence fusion sweep — fast-weak (TPR {:.2}, w=1) + \
         slow-strong (TPR {:.2} / FPR {:.2} every {} epochs, {:.0}% dropout, \
         stale decay {})\n\
         machine: {} benign + {} attacks over {} epochs, N* = {}\n\n{}",
        cfg.base.tpr,
        cfg.tier.slow_tpr,
        cfg.tier.slow_fpr,
        cfg.tier.slow_cadence,
        100.0 * cfg.tier.slow_dropout,
        cfg.tier.stale_decay,
        cfg.base.benign_procs,
        cfg.base.attacks,
        cfg.base.epochs,
        cfg.base.n_star,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_fpr_never_exceeds_either_stage() {
        let r = run(&EnsembleConfig::quick());
        for (i, p) in r.two_level.points().iter().enumerate() {
            assert!(p.fpr <= r.screen.points()[i].fpr + 1e-9);
            assert!(p.fpr <= r.confirmer.points()[i].fpr + 1e-9);
        }
    }

    #[test]
    fn confirmer_duty_cycle_is_a_fraction() {
        let r = run(&EnsembleConfig::quick());
        for &(_, d) in &r.confirmer_duty_cycle {
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn two_level_keeps_useful_recall() {
        let r = run(&EnsembleConfig::quick());
        let last = r.two_level.points().last().unwrap();
        assert!(last.f1 > 0.6, "two-level F1 collapsed: {}", last.f1);
    }

    #[test]
    fn report_renders_all_configurations() {
        let r = run(&EnsembleConfig::quick());
        for key in ["screen", "confirmer", "two-level", "panel", "duty"] {
            assert!(r.report.contains(key), "missing {key}");
        }
    }

    /// The acceptance bar of the fusion tier: the heterogeneous ensemble
    /// kills every staged attack at every swept weight...
    #[test]
    fn fusion_sweep_kills_every_attack_at_every_weight() {
        let r = run_fusion(&FusionSweepConfig::quick());
        for p in &r.points {
            assert_eq!(
                p.attacks_terminated, 3,
                "slow weight {:?} missed an attack",
                p.slow_weight
            );
            assert!(p.mean_epochs_to_kill.is_finite());
            assert!(p.fusion.verdicts > 0);
        }
    }

    /// ...at a wrongful-response rate no worse than trusting the fast-weak
    /// detector alone — at *every* weight, not just the best one.
    #[test]
    fn fused_wrongful_rate_never_exceeds_the_fast_weak_baseline() {
        let r = run_fusion(&FusionSweepConfig::quick());
        assert!(
            r.baseline.benign_killed_pct > 0.0,
            "the fast-weak baseline should be visibly trigger-happy"
        );
        for p in &r.points {
            assert!(
                p.benign_killed_pct <= r.baseline.benign_killed_pct,
                "slow weight {:?}: fused {}% vs baseline {}%",
                p.slow_weight,
                p.benign_killed_pct,
                r.baseline.benign_killed_pct
            );
        }
    }

    /// Up-weighting the precise slow member shifts kill authority away
    /// from fast-member bursts: the heaviest weight must wrongfully kill
    /// no more than the lightest.
    #[test]
    fn heavier_slow_weight_does_not_cost_more_benign_kills() {
        let r = run_fusion(&FusionSweepConfig::quick());
        let first = r.points.first().expect("non-empty sweep");
        let last = r.points.last().expect("non-empty sweep");
        assert!(last.benign_killed_pct <= first.benign_killed_pct);
    }

    #[test]
    fn fusion_sweep_is_deterministic() {
        let cfg = FusionSweepConfig::quick();
        let a = run_fusion(&cfg);
        let b = run_fusion(&cfg);
        assert_eq!(a.baseline, b.baseline);
        assert_eq!(a.points, b.points);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn fusion_sweep_report_renders() {
        let r = run_fusion(&FusionSweepConfig::quick());
        assert!(r.report.contains("Heterogeneous-cadence fusion sweep"));
        assert!(r.report.contains("(baseline)"));
        assert_eq!(r.points.len(), 4);
        for w in ["0.5", "1", "2", "4"] {
            assert!(r.report.contains(w), "missing weight {w}");
        }
    }
}
