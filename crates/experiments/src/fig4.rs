//! Fig. 4 — the impact of Valkyrie on six micro-architectural attacks.
//!
//! Each sub-figure runs the attack twice: once unimpeded and once behind a
//! statistical HPC detector augmented with Valkyrie (Eq. 8 scheduler
//! actuator, incremental assessment functions), recording the attack's
//! progress metric per epoch.

use crate::harness::{fmt, TextTable};
use crate::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use valkyrie_attacks::channels::{ChannelConfig, CovertChannel, Medium};
use valkyrie_attacks::l1d_aes::{L1dAesAttack, L1dAesConfig};
use valkyrie_attacks::l1i_rsa::{L1iRsaAttack, L1iRsaConfig};
use valkyrie_attacks::tsa::{TsaChannel, TsaConfig};
use valkyrie_core::{AssessmentFn, EngineConfig, ProcessState, ShareActuator};
use valkyrie_detect::StatisticalDetector;
use valkyrie_hpc::{HpcSample, Signature};
use valkyrie_sim::machine::{Machine, MachineConfig, Workload};

/// Shared Fig. 4 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Config {
    /// Epochs per run.
    pub epochs: u64,
    /// Measurements required before the terminable state (`N*`).
    pub n_star: u64,
    /// Statistical-detector threshold in σ.
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            epochs: 100,
            n_star: 30,
            threshold: 3.5,
            seed: 0xF164,
        }
    }
}

impl Fig4Config {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Self {
            epochs: 40,
            n_star: 12,
            threshold: 3.5,
            seed: 0xF164,
        }
    }
}

/// A with/without progress series.
#[derive(Debug, Clone)]
pub struct SeriesResult {
    /// Metric name (guessing entropy, error rate, bits).
    pub metric: &'static str,
    /// Metric value per epoch without Valkyrie.
    pub without: Vec<f64>,
    /// Metric value per epoch with Valkyrie.
    pub with_valkyrie: Vec<f64>,
    /// Epoch at which the attack was terminated (if it was).
    pub terminated_at: Option<u64>,
    /// Rendered report.
    pub report: String,
}

/// The benign baseline the statistical detector is fitted on.
pub fn benign_baseline(seed: u64) -> Vec<HpcSample> {
    let baseline = crate::cache::get_or_build(
        crate::cache::CacheKey::new("benign-baseline").with(seed),
        || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            for _ in 0..400 {
                out.push(Signature::cpu_bound().sample(&mut rng, 1.0));
                out.push(Signature::memory_bound().sample(&mut rng, 1.0));
                out.push(Signature::graphics_bound().sample(&mut rng, 1.0));
            }
            out
        },
    );
    (*baseline).clone()
}

/// Spawns a benign compute-bound "system" process so the CFS weight lever
/// has contention to act on (Eq. 8 throttling divides CPU time *between*
/// processes; a lone process would be unaffected by its own weight).
pub fn spawn_background(machine: &mut Machine) -> valkyrie_sim::Pid {
    let mut spec = valkyrie_workloads::roster()
        .into_iter()
        .find(|s| s.burst_prob == 0.0)
        .expect("roster has clean programs");
    spec.epochs_to_complete = u64::MAX / 4;
    machine.spawn(Box::new(valkyrie_workloads::BenchmarkWorkload::new(spec)))
}

/// The Eq. 8 engine used by all micro-architectural case studies.
pub fn microarch_engine(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
        .build()
        .expect("static config is valid")
}

fn run_pair<T, FMake, FMetric>(
    config: &Fig4Config,
    metric_name: &'static str,
    label: &str,
    make: FMake,
    metric: FMetric,
) -> SeriesResult
where
    T: Workload + 'static,
    FMake: Fn() -> T,
    FMetric: Fn(&T) -> f64,
{
    // Without Valkyrie.
    let mut without = Vec::with_capacity(config.epochs as usize);
    let mut m = Machine::new(MachineConfig {
        seed: config.seed,
        ..MachineConfig::default()
    });
    let pid = m.spawn(Box::new(make()));
    spawn_background(&mut m);
    let mut reports = Vec::new();
    for _ in 0..config.epochs {
        m.run_epoch_into(&mut reports);
        without.push(metric(m.workload_as::<T>(pid).expect("workload present")));
    }

    // With Valkyrie.
    let detector =
        StatisticalDetector::fit_normalized(&benign_baseline(config.seed), config.threshold);
    let machine = Machine::new(MachineConfig {
        seed: config.seed ^ 0x1,
        ..MachineConfig::default()
    });
    let mut run = AugmentedRun::new(
        machine,
        microarch_engine(config.n_star),
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::SchedulerWeight,
            window: config.n_star as usize * 2,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid2 = run.machine_mut().spawn(Box::new(make()));
    spawn_background(run.machine_mut());
    run.watch(pid2);
    let mut with_valkyrie = Vec::with_capacity(config.epochs as usize);
    let mut terminated_at = None;
    for e in 0..config.epochs {
        run.step_ref();
        with_valkyrie.push(metric(
            run.machine()
                .workload_as::<T>(pid2)
                .expect("workload present"),
        ));
        if terminated_at.is_none() && run.state(pid2) == Some(ProcessState::Terminated) {
            terminated_at = Some(e + 1);
        }
    }

    let mut t = TextTable::new(vec!["epoch", "without Valkyrie", "with Valkyrie"]);
    let step = (config.epochs / 16).max(1);
    for e in (0..config.epochs as usize).step_by(step as usize) {
        t.row(vec![
            (e + 1).to_string(),
            fmt(without[e], 3),
            fmt(with_valkyrie[e], 3),
        ]);
    }
    let mut report = format!("{label} — {metric_name} per epoch\n\n{}", t.render());
    report.push_str(&format!(
        "\nfinal {metric_name}: without = {:.3}, with = {:.3}{}\n",
        without.last().copied().unwrap_or(0.0),
        with_valkyrie.last().copied().unwrap_or(0.0),
        terminated_at.map_or(String::new(), |e| format!(
            " (attack terminated at epoch {e})"
        )),
    ));
    SeriesResult {
        metric: metric_name,
        without,
        with_valkyrie,
        terminated_at,
        report,
    }
}

/// Fig. 4a — L1-D Prime+Probe on AES; metric: guessing entropy.
pub fn run_a(config: &Fig4Config) -> SeriesResult {
    run_pair(
        config,
        "guessing entropy",
        "Fig. 4a — L1-D cache attack on AES",
        || L1dAesAttack::new(L1dAesConfig::default()),
        L1dAesAttack::guessing_entropy,
    )
}

/// Fig. 4b — L1-I Prime+Probe on RSA; metric: bit error rate.
pub fn run_b(config: &Fig4Config) -> SeriesResult {
    run_pair(
        config,
        "bit error rate",
        "Fig. 4b — L1-I cache attack on RSA",
        || L1iRsaAttack::new(L1iRsaConfig::default()),
        L1iRsaAttack::bit_error_rate,
    )
}

/// Fig. 4c — TSA load-store-buffer covert channel; metric: bit error rate.
pub fn run_c(config: &Fig4Config) -> SeriesResult {
    run_pair(
        config,
        "bit error rate",
        "Fig. 4c — TSA covert channel",
        || TsaChannel::new(TsaConfig::default()),
        TsaChannel::bit_error_rate,
    )
}

/// Fig. 4d result: bits transmitted by CJAG per channel count.
#[derive(Debug, Clone)]
pub struct Fig4dResult {
    /// `(channels, bits without, bits with)` per configuration.
    pub rows: Vec<(usize, u64, u64)>,
    /// Rendered report.
    pub report: String,
}

/// Fig. 4d — CJAG with 1/2/4/8 parallel channels; metric: bits transmitted.
pub fn run_d(config: &Fig4Config) -> Fig4dResult {
    let mut rows = Vec::new();
    for channels in [1usize, 2, 4, 8] {
        let series = run_pair(
            config,
            "bits transmitted",
            "Fig. 4d — CJAG covert channel",
            move || CovertChannel::new(Medium::llc(), ChannelConfig::cjag(channels)),
            |c: &CovertChannel| c.bits_transmitted() as f64,
        );
        rows.push((
            channels,
            *series.without.last().unwrap_or(&0.0) as u64,
            *series.with_valkyrie.last().unwrap_or(&0.0) as u64,
        ));
    }
    let mut t = TextTable::new(vec!["channels", "bits without", "bits with Valkyrie"]);
    for (c, wo, w) in &rows {
        t.row(vec![c.to_string(), wo.to_string(), w.to_string()]);
    }
    let report = format!(
        "Fig. 4d — CJAG bits transmitted in {} epochs\n\n{}",
        config.epochs,
        t.render()
    );
    Fig4dResult { rows, report }
}

/// Fig. 4e — single-set LLC covert channel; metric: bits transmitted.
pub fn run_e(config: &Fig4Config) -> SeriesResult {
    run_pair(
        config,
        "bits transmitted",
        "Fig. 4e — LLC covert channel",
        || CovertChannel::new(Medium::llc(), ChannelConfig::llc()),
        |c: &CovertChannel| c.bits_transmitted() as f64,
    )
}

/// Fig. 4f — TLB covert channel; metric: bits transmitted.
pub fn run_f(config: &Fig4Config) -> SeriesResult {
    run_pair(
        config,
        "bits transmitted",
        "Fig. 4f — TLB covert channel",
        || CovertChannel::new(Medium::tlb(), ChannelConfig::tlb()),
        |c: &CovertChannel| c.bits_transmitted() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_valkyrie_preserves_guessing_entropy() {
        let cfg = Fig4Config {
            epochs: 60,
            n_star: 12,
            ..Fig4Config::quick()
        };
        let r = run_a(&cfg);
        let ge_without = *r.without.last().unwrap();
        let ge_with = *r.with_valkyrie.last().unwrap();
        // Unthrottled attack learns (entropy falls); Valkyrie keeps it high.
        assert!(
            ge_without + 20.0 < ge_with,
            "{ge_without} not well below {ge_with}"
        );
        assert!(ge_with > 70.0, "GE with Valkyrie {ge_with}");
        assert!(r.terminated_at.is_some(), "attack must be terminated");
    }

    #[test]
    fn fig4b_error_rate_stays_high_with_valkyrie() {
        let r = run_b(&Fig4Config::quick());
        let e_without = *r.without.last().unwrap();
        let e_with = *r.with_valkyrie.last().unwrap();
        assert!(e_with > 0.3, "error with Valkyrie {e_with}");
        assert!(e_without <= e_with + 1e-9);
    }

    #[test]
    fn fig4e_bits_collapse_with_valkyrie() {
        let r = run_e(&Fig4Config::quick());
        let bits_without = *r.without.last().unwrap();
        let bits_with = *r.with_valkyrie.last().unwrap();
        assert!(bits_without > 4.0 * bits_with.max(1.0));
    }

    #[test]
    fn fig4d_more_channels_transmit_less_under_valkyrie() {
        let r = run_d(&Fig4Config {
            epochs: 30,
            n_star: 10,
            ..Fig4Config::quick()
        });
        // The 8-channel configuration has 8x the initialisation cost:
        // Valkyrie throttles it before it can transmit anything.
        let with8 = r.rows.last().unwrap().2;
        let with1 = r.rows.first().unwrap().2;
        assert!(with8 <= with1, "8-channel {with8} vs 1-channel {with1}");
    }
}
