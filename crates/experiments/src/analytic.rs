//! The Section V-C worked example, computed from the slowdown model.
//!
//! Setup: the detector needs `N* = 15` epochs; penalty and compensation are
//! incremental; the actuator drops the CPU share by 10 % for every unit of
//! threat-index increase with a 1 % floor. The paper reports a 79.6 %
//! slowdown for an always-flagged attack and 26 % for a benign process
//! falsely flagged in its first five epochs.
//!
//! The actuator sentence is ambiguous; this module evaluates the plausible
//! readings side by side (see `DESIGN.md`): the percentage-point reading
//! reproduces the attack number almost exactly.

use crate::harness::TextTable;
use valkyrie_core::{simulate_response, AssessmentFn, Classification, ShareActuator, ThrottleLaw};

/// One interpretation's computed slowdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticRow {
    /// Actuator interpretation.
    pub interpretation: &'static str,
    /// All-malicious (attack) slowdown, percent.
    pub attack_pct: f64,
    /// FP-then-recover slowdown, percent.
    pub false_positive_pct: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct AnalyticResult {
    /// One row per actuator interpretation.
    pub rows: Vec<AnalyticRow>,
    /// Rendered report.
    pub report: String,
}

/// Runs the worked example for each actuator interpretation.
pub fn run() -> AnalyticResult {
    let n_star = 15;
    let attack = vec![Classification::Malicious; 15];
    let mut fp_trace = vec![Classification::Malicious; 5];
    fp_trace.extend(vec![Classification::Benign; 10]);

    let interpretations: Vec<(&'static str, ThrottleLaw)> = vec![
        (
            "10 pp per unit of threat (percentage points)",
            ThrottleLaw::PercentPointPerUnit { step: 0.10 },
        ),
        (
            "x0.9 per unit of threat (multiplicative)",
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
        ),
        (
            "Eq. 8 scheduler weight (gamma = 0.1)",
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ),
    ];

    let mut rows = Vec::new();
    for (name, law) in interpretations {
        let actuator = ShareActuator::new(valkyrie_core::ResourceKind::Cpu, law, 0.01);
        let attack_trace = simulate_response(
            n_star,
            &attack,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            actuator,
        );
        let fp = simulate_response(
            n_star,
            &fp_trace,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            actuator,
        );
        rows.push(AnalyticRow {
            interpretation: name,
            attack_pct: attack_trace.cpu_slowdown_percent(),
            false_positive_pct: fp.cpu_slowdown_percent(),
        });
    }

    let mut t = TextTable::new(vec![
        "actuator interpretation",
        "attack slowdown",
        "FP slowdown",
    ]);
    for r in &rows {
        t.row(vec![
            r.interpretation.to_string(),
            format!("{:.1}%", r.attack_pct),
            format!("{:.1}%", r.false_positive_pct),
        ]);
    }
    let report = format!(
        "Section V-C worked example (N* = 15, incremental Fp/Fc, 1% CPU floor)\n\
         paper: attack 79.6%, false positive 26%\n\n{}",
        t.render()
    );
    AnalyticResult { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentage_point_reading_matches_paper_attack_number() {
        let r = run();
        let pp = &r.rows[0];
        assert!(
            (pp.attack_pct - 79.6).abs() < 1.5,
            "attack {}%",
            pp.attack_pct
        );
    }

    #[test]
    fn fp_slowdown_is_always_well_below_attack_slowdown() {
        for row in run().rows {
            assert!(
                row.false_positive_pct < row.attack_pct - 20.0,
                "{}: fp {}% vs attack {}%",
                row.interpretation,
                row.false_positive_pct,
                row.attack_pct
            );
        }
    }
}
