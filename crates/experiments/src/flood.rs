//! The noise-flood sweep: quantifying the ingest DoS and its defense
//! (ours; beyond the paper).
//!
//! PR 5's bounded ingest rings traded detector stalls for bounded loss —
//! and bounded loss is an attack surface: a tenant that can publish
//! benign-looking decoys can force `DropOldest`/`Coalesce` evictions in
//! exactly the shards that own a real attack's pids, masking the attack
//! inside the dropped window ([`valkyrie_workloads::NoiseFlood`]). This
//! sweep drives the [`crate::multi_tenant`] machine across ring size ×
//! overflow policy × flood rate, before and after the overload defense
//! ([`valkyrie_core::IngestDefense`]: priority lanes + per-publisher fair
//! queueing), and reports for every cell: attacks killed, mean epochs to
//! kill, wrongful terminations, and the defense's own counters.
//!
//! The headline shape: at a fixed ring size, detection degrades with the
//! flood rate — mild rates only evict stale benign verdicts, rates near
//! the ring capacity start catching the attack's verdicts, and rates at
//! or above it silence the targeted shards completely (zero kills).
//! With the defense on, the flooding publisher is charged for its own
//! decoys and escalated pids ride the priority lane, so kills return to
//! the undisturbed async baseline with the flood still running.

use crate::harness::{pct, TextTable};
use crate::multi_tenant::{self, AsyncIngest, FloodTier, MultiTenantConfig};
use valkyrie_core::{IngestDefense, OverflowPolicy};

/// The sweep grid: every `capacity × policy × rate × {undefended,
/// defended}` cell runs one full [`multi_tenant::run`].
#[derive(Debug, Clone)]
pub struct FloodSweepConfig {
    /// The machine every cell shares (must carry both the async ingest
    /// and the flood tier; the sweep overrides capacity, policy, rate and
    /// defense per cell).
    pub base: MultiTenantConfig,
    /// Ring capacities to sweep (observations per shard).
    pub capacities: Vec<usize>,
    /// Overflow policies to sweep.
    pub policies: Vec<OverflowPolicy>,
    /// Flood rates to sweep (decoys per target shard per epoch).
    pub rates: Vec<u32>,
}

impl FloodSweepConfig {
    /// The scaled-down grid used by tests and the `--quick` smoke run:
    /// one ring size, both lossy policies, rates below / near / above the
    /// ring capacity.
    pub fn quick() -> Self {
        Self {
            base: MultiTenantConfig::quick_flood(IngestDefense::default()),
            capacities: vec![128],
            policies: vec![OverflowPolicy::DropOldest, OverflowPolicy::Coalesce],
            rates: vec![64, 112, 160],
        }
    }
}

impl Default for FloodSweepConfig {
    /// The full-scale grid: the 4k-process machine under both lossy
    /// policies, two ring sizes, flood rates below and above capacity.
    fn default() -> Self {
        Self {
            base: MultiTenantConfig {
                ingest: Some(AsyncIngest {
                    policy: OverflowPolicy::DropOldest,
                    ..AsyncIngest::default()
                }),
                flood: Some(FloodTier::default()),
                ..MultiTenantConfig::default()
            },
            capacities: vec![512, 1024],
            policies: vec![OverflowPolicy::DropOldest, OverflowPolicy::Coalesce],
            rates: vec![512, 1152],
        }
    }
}

/// One sweep cell's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodCell {
    /// Ring capacity (observations per shard).
    pub capacity: usize,
    /// Overflow policy of the rings.
    pub policy: OverflowPolicy,
    /// Flood rate (decoys per target shard per epoch).
    pub rate: u32,
    /// Whether the overload defense was on ([`IngestDefense::full`]).
    pub defended: bool,
    /// Attacks terminated within the horizon.
    pub attacks_terminated: usize,
    /// Attacks launched.
    pub attacks_total: usize,
    /// Mean epochs from arrival to kill (`NaN` when nothing was killed).
    pub mean_epochs_to_kill: f64,
    /// Benign processes wrongfully terminated, % of the fleet.
    pub benign_killed_pct: f64,
    /// Observations evicted by the overflow policy.
    pub dropped: u64,
    /// Observations routed through the priority lane.
    pub priority_queued: u64,
    /// Evictions fair queueing redirected onto the hogging publisher.
    pub evictions_deflected: u64,
}

/// Outcome of the whole sweep.
#[derive(Debug, Clone)]
pub struct FloodSweepResult {
    /// One cell per `capacity × policy × rate × defense` combination, in
    /// sweep order (defense off before on).
    pub cells: Vec<FloodCell>,
    /// Rendered report.
    pub report: String,
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if `cfg.base` lacks the async ingest or flood tier.
pub fn run(cfg: &FloodSweepConfig) -> FloodSweepResult {
    let base_ai = cfg
        .base
        .ingest
        .expect("the flood sweep needs the async tier");
    let base_ft = cfg
        .base
        .flood
        .expect("the flood sweep needs the flood tier");
    let mut cells = Vec::new();
    let mut t = TextTable::new(vec![
        "ring",
        "policy",
        "rate/shard",
        "defense",
        "kills",
        "epochs to kill",
        "benign killed",
        "dropped",
        "priority",
        "deflected",
    ]);
    for &capacity in &cfg.capacities {
        for &policy in &cfg.policies {
            for &rate in &cfg.rates {
                for defended in [false, true] {
                    let defense = if defended {
                        IngestDefense::full()
                    } else {
                        IngestDefense::default()
                    };
                    let r = multi_tenant::run(&MultiTenantConfig {
                        ingest: Some(AsyncIngest {
                            capacity,
                            policy,
                            ..base_ai
                        }),
                        flood: Some(FloodTier {
                            rate,
                            defense,
                            ..base_ft
                        }),
                        ..cfg.base
                    });
                    let stats = r.ingest.expect("flood runs expose ingest stats");
                    let cell = FloodCell {
                        capacity,
                        policy,
                        rate,
                        defended,
                        attacks_terminated: r.attacks_terminated,
                        attacks_total: cfg.base.attacks,
                        mean_epochs_to_kill: r.mean_epochs_to_kill,
                        benign_killed_pct: r.benign_killed_pct,
                        dropped: stats.dropped,
                        priority_queued: stats.priority_queued,
                        evictions_deflected: stats.evictions_deflected,
                    };
                    t.row(vec![
                        cell.capacity.to_string(),
                        format!("{:?}", cell.policy),
                        cell.rate.to_string(),
                        if defended { "lanes+fair" } else { "off" }.to_string(),
                        format!("{}/{}", cell.attacks_terminated, cell.attacks_total),
                        if cell.mean_epochs_to_kill.is_nan() {
                            "never".to_string()
                        } else {
                            format!("{:.1}", cell.mean_epochs_to_kill)
                        },
                        pct(cell.benign_killed_pct),
                        cell.dropped.to_string(),
                        cell.priority_queued.to_string(),
                        cell.evictions_deflected.to_string(),
                    ]);
                    cells.push(cell);
                }
            }
        }
    }
    let report = format!(
        "Noise-flood sweep — {} benign + {} attacks over {} epochs, {} shards; \
         flood bursts x{} every {} epochs, decoy churn every {} epochs\n\
         (every row is one multi-tenant run; \"defense\" = priority lanes + \
         per-publisher fair queueing)\n\n{}",
        cfg.base.benign_procs,
        cfg.base.attacks,
        cfg.base.epochs,
        cfg.base.shards,
        base_ft.burst,
        base_ft.burst_period,
        base_ft.churn,
        t.render()
    );
    FloodSweepResult { cells, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_cell_grid(rate: u32) -> FloodSweepConfig {
        FloodSweepConfig {
            base: MultiTenantConfig::quick_flood(IngestDefense::default()),
            capacities: vec![128],
            policies: vec![OverflowPolicy::DropOldest],
            rates: vec![rate],
        }
    }

    /// The headline pair: at a flood rate past the ring capacity the
    /// undefended machine loses every kill, and the defense restores all
    /// of them with the flood still running.
    #[test]
    fn defense_restores_kills_the_flood_suppressed() {
        let r = run(&one_cell_grid(160));
        assert_eq!(r.cells.len(), 2);
        let (off, on) = (&r.cells[0], &r.cells[1]);
        assert!(!off.defended && on.defended);
        assert_eq!(off.attacks_terminated, 0, "undefended: attack masked");
        assert!(off.mean_epochs_to_kill.is_nan());
        assert_eq!(on.attacks_terminated, on.attacks_total);
        assert!(on.priority_queued > 0);
        assert!(on.evictions_deflected > 0);
        assert!(r.report.contains("Noise-flood sweep"));
        assert!(r.report.contains("never"));
    }

    /// Below the overflow threshold the flood is harmless — both cells
    /// kill everything, and nothing is deflected when nothing overflows
    /// beyond the decoys' own backlog.
    #[test]
    fn mild_flood_rates_do_not_mask_the_attack() {
        let r = run(&one_cell_grid(16));
        assert_eq!(r.cells[0].attacks_terminated, r.cells[0].attacks_total);
        assert_eq!(r.cells[1].attacks_terminated, r.cells[1].attacks_total);
    }
}
