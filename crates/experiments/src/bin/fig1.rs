//! Regenerates Fig. 1 (detection efficacy vs number of measurements).
fn main() {
    let cfg = valkyrie_experiments::fig1::Fig1Config::default();
    println!("{}", valkyrie_experiments::fig1::run(&cfg).report);
}
