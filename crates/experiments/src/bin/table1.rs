//! Regenerates Table I (post-detection response survey).
fn main() {
    println!("{}", valkyrie_experiments::table1::run());
}
