//! Regenerates every table and figure in sequence.
use valkyrie_experiments as x;

fn main() {
    println!("{}", x::analytic::run().report);
    println!("{}", x::table1::run());
    println!(
        "{}",
        x::table2::run(&x::table2::Table2Config::default()).report
    );
    println!("{}", x::table3::run());
    println!("{}", x::fig1::run(&x::fig1::Fig1Config::default()).report);
    let f4 = x::fig4::Fig4Config::default();
    println!("{}", x::fig4::run_a(&f4).report);
    println!("{}", x::fig4::run_b(&f4).report);
    println!("{}", x::fig4::run_c(&f4).report);
    println!("{}", x::fig4::run_d(&f4).report);
    println!("{}", x::fig4::run_e(&f4).report);
    println!("{}", x::fig4::run_f(&f4).report);
    let f5 = x::fig5::Fig5Config::default();
    let a = x::fig5::run_5a(&f5);
    println!("{}", a.report);
    println!("{}", x::fig5::run_5b(&f5, &a).report);
    println!(
        "{}",
        x::table4::run(&x::table4::Table4Config::default()).report
    );
    let f6 = x::fig6::Fig6Config::default();
    println!("{}", x::fig6::run_a(&f6).report);
    println!("{}", x::fig6::run_b(&f6).report);
    println!("{}", x::fig6::run_c(&f6).report);
    println!(
        "{}",
        x::responses::run(&x::responses::ResponsesConfig::default()).report
    );
    println!(
        "{}",
        x::evasion::run(&x::evasion::EvasionConfig::default()).report
    );
    println!(
        "{}",
        x::adaptive::run(&x::adaptive::AdaptiveConfig::default()).report
    );
    println!(
        "{}",
        x::ensemble::run(&x::ensemble::EnsembleConfig::default()).report
    );
    println!(
        "{}",
        x::multi_tenant::run(&x::multi_tenant::MultiTenantConfig::default()).report
    );
}
