//! Regenerates Fig. 4d (CJAG bits transmitted per channel count).
fn main() {
    let cfg = valkyrie_experiments::fig4::Fig4Config::default();
    println!("{}", valkyrie_experiments::fig4::run_d(&cfg).report);
}
