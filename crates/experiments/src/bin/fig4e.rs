//! Regenerates Fig. 4e.
fn main() {
    let cfg = valkyrie_experiments::fig4::Fig4Config::default();
    println!("{}", valkyrie_experiments::fig4::run_e(&cfg).report);
}
