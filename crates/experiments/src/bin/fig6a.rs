//! Regenerates Fig. 6a.
fn main() {
    let cfg = valkyrie_experiments::fig6::Fig6Config::default();
    println!("{}", valkyrie_experiments::fig6::run_a(&cfg).report);
}
