//! Adaptive best-response study: rank every response law by its efficacy
//! floor against a learning attacker (law probe + intensity modulation on
//! the binary path, rung riding on the mass path), next to the strongest
//! fixed strategy from the evasion roster. `--quick` runs the scaled-down
//! search used by the golden-output pins and the CI smoke step.
use valkyrie_experiments::adaptive;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--quick") {
        adaptive::AdaptiveConfig::quick()
    } else {
        adaptive::AdaptiveConfig::default()
    };
    println!("{}", adaptive::run(&cfg).report);
}
