//! Fleet scale: 100k+ machines with churn under one hierarchical engine.
//!
//! `--quick` runs the scaled-down configuration used by the golden-output
//! pins (200 machines); the default drives the full 100k-machine cluster —
//! a million live services — through `FleetEngine::tick` every epoch and
//! reports kill latency, wrongful-termination rate and engine throughput
//! at that scale.
use valkyrie_experiments::fleet_scale;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--quick") {
        fleet_scale::FleetScaleConfig::quick()
    } else {
        fleet_scale::FleetScaleConfig::default()
    };
    let result = fleet_scale::run(&cfg);
    println!("{}", result.report);
}
