//! Fleet scale: 100k+ machines with churn under one hierarchical engine.
//!
//! `--quick` runs the scaled-down configuration used by the golden-output
//! pins (200 machines); the default drives the full 100k-machine cluster —
//! a million live services — through `FleetEngine::tick` every epoch and
//! reports kill latency, wrongful-termination rate and engine throughput
//! at that scale.
//!
//! `--async-ingest` routes every detector batch through the fleet's
//! bounded ingest rings (Block policy, overload defense armed) and drains
//! them with `drain_tick` — same security outcome, plus the per-lane and
//! per-publisher ingest counters in the summary.
use valkyrie_experiments::fleet_scale;

fn main() {
    let base = if std::env::args().any(|a| a == "--quick") {
        fleet_scale::FleetScaleConfig::quick()
    } else {
        fleet_scale::FleetScaleConfig::default()
    };
    let result = fleet_scale::run(&fleet_scale::FleetScaleConfig {
        async_ingest: std::env::args().any(|a| a == "--async-ingest"),
        ..base
    });
    println!("{}", result.report);
}
