//! Regenerates Table III (case-study configuration matrix).
fn main() {
    println!("{}", valkyrie_experiments::table3::run());
}
