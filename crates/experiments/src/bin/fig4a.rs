//! Regenerates Fig. 4a.
fn main() {
    let cfg = valkyrie_experiments::fig4::Fig4Config::default();
    println!("{}", valkyrie_experiments::fig4::run_a(&cfg).report);
}
