//! Regenerates Fig. 6b.
fn main() {
    let cfg = valkyrie_experiments::fig6::Fig6Config::default();
    println!("{}", valkyrie_experiments::fig6::run_b(&cfg).report);
}
