//! Regenerates the Section V-C worked example.
fn main() {
    println!("{}", valkyrie_experiments::analytic::run().report);
}
