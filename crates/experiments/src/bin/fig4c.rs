//! Regenerates Fig. 4c.
fn main() {
    let cfg = valkyrie_experiments::fig4::Fig4Config::default();
    println!("{}", valkyrie_experiments::fig4::run_c(&cfg).report);
}
