//! Regenerates Fig. 6c.
fn main() {
    let cfg = valkyrie_experiments::fig6::Fig6Config::default();
    println!("{}", valkyrie_experiments::fig6::run_c(&cfg).report);
}
