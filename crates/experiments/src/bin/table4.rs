//! Regenerates Table IV (per-platform slowdowns).
fn main() {
    let cfg = valkyrie_experiments::table4::Table4Config::default();
    println!("{}", valkyrie_experiments::table4::run(&cfg).report);
}
