//! Multi-tenant machine: concurrent attacks in a fleet of benign services.
//!
//! `--pool` runs the response tier through the persistent worker pool
//! instead of per-tick scoped threads (identical security outcome; the
//! throughput row is the difference worth watching).
//!
//! `--async-ingest` makes the detector tier slow and jittery: verdicts
//! are published into the engine's bounded per-shard ingest rings 3–5
//! epochs after their measurements, and the epoch driver drains whatever
//! has arrived with `drain_tick` — demonstrating that detector latency
//! costs detection lag (compare the "mean epochs to kill" row against a
//! synchronous run), never a stalled response tick.
//!
//! `--fused` swaps the detector tier for the heterogeneous fused
//! ensemble: a weakened fast member (TPR 0.70) publishing every epoch
//! plus a slow-strong member publishing every 4th epoch with dropout,
//! combined by the engine's weighted-evidence fusion under the
//! graduated escalation ladder. Mutually exclusive with
//! `--async-ingest`.
//!
//! `--flood` (implies `--async-ingest`) runs a noise-floor DoS against
//! the ingest rings while the attacks run underneath: a second publisher
//! handle spams benign-looking decoys at exactly the shards that own the
//! attack pids. Add `--defend` to harden the rings with priority lanes +
//! per-publisher fair queueing and watch the kills come back.
use valkyrie_core::{ExecutionMode, IngestDefense};
use valkyrie_experiments::multi_tenant;

fn main() {
    let execution = if std::env::args().any(|a| a == "--pool") {
        ExecutionMode::Pool
    } else {
        ExecutionMode::ScopedSpawn
    };
    let flood = if std::env::args().any(|a| a == "--flood") {
        let defense = if std::env::args().any(|a| a == "--defend") {
            IngestDefense::full()
        } else {
            IngestDefense::default()
        };
        Some(multi_tenant::FloodTier {
            defense,
            ..multi_tenant::FloodTier::default()
        })
    } else {
        None
    };
    let ingest = if flood.is_some() || std::env::args().any(|a| a == "--async-ingest") {
        Some(multi_tenant::AsyncIngest::default())
    } else {
        None
    };
    let fusion = if std::env::args().any(|a| a == "--fused") {
        Some(multi_tenant::FusionTier::default())
    } else {
        None
    };
    let tpr = if fusion.is_some() {
        0.70
    } else {
        multi_tenant::MultiTenantConfig::default().tpr
    };
    let result = multi_tenant::run(&multi_tenant::MultiTenantConfig {
        execution,
        ingest,
        fusion,
        flood,
        tpr,
        ..multi_tenant::MultiTenantConfig::default()
    });
    println!("{}", result.report);
}
