//! Multi-tenant machine: concurrent attacks in a fleet of benign services.
//!
//! `--pool` runs the response tier through the persistent worker pool
//! instead of per-tick scoped threads (identical security outcome; the
//! throughput row is the difference worth watching).
use valkyrie_core::ExecutionMode;
use valkyrie_experiments::multi_tenant;

fn main() {
    let execution = if std::env::args().any(|a| a == "--pool") {
        ExecutionMode::Pool
    } else {
        ExecutionMode::ScopedSpawn
    };
    let result = multi_tenant::run(&multi_tenant::MultiTenantConfig {
        execution,
        ..multi_tenant::MultiTenantConfig::default()
    });
    println!("{}", result.report);
}
