//! Multi-tenant machine: concurrent attacks in a fleet of benign services.
use valkyrie_experiments::multi_tenant;

fn main() {
    let result = multi_tenant::run(&multi_tenant::MultiTenantConfig::default());
    println!("{}", result.report);
}
