//! Multi-tenant machine: concurrent attacks in a fleet of benign services.
//!
//! `--pool` runs the response tier through the persistent worker pool
//! instead of per-tick scoped threads (identical security outcome; the
//! throughput row is the difference worth watching).
//!
//! `--async-ingest` makes the detector tier slow and jittery: verdicts
//! are published into the engine's bounded per-shard ingest rings 3–5
//! epochs after their measurements, and the epoch driver drains whatever
//! has arrived with `drain_tick` — demonstrating that detector latency
//! costs detection lag (compare the "mean epochs to kill" row against a
//! synchronous run), never a stalled response tick.
use valkyrie_core::ExecutionMode;
use valkyrie_experiments::multi_tenant;

fn main() {
    let execution = if std::env::args().any(|a| a == "--pool") {
        ExecutionMode::Pool
    } else {
        ExecutionMode::ScopedSpawn
    };
    let ingest = if std::env::args().any(|a| a == "--async-ingest") {
        Some(multi_tenant::AsyncIngest::default())
    } else {
        None
    };
    let result = multi_tenant::run(&multi_tenant::MultiTenantConfig {
        execution,
        ingest,
        ..multi_tenant::MultiTenantConfig::default()
    });
    println!("{}", result.report);
}
