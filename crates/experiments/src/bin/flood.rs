//! Noise-flood sweep: the ingest DoS and its defense, across ring size ×
//! overflow policy × flood rate.
//!
//! Every row is one multi-tenant run with a decoy flood aimed at the
//! attack pids' shards, before ("off") and after ("lanes+fair") the
//! overload defense. `--quick` runs the scaled-down grid used by the
//! golden-output pins and the CI smoke step.
use valkyrie_experiments::flood;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--quick") {
        flood::FloodSweepConfig::quick()
    } else {
        flood::FloodSweepConfig::default()
    };
    println!("{}", flood::run(&cfg).report);
}
