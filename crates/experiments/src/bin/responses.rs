//! Quantifies Table I: every post-detection response on identical traces.
fn main() {
    let cfg = valkyrie_experiments::responses::ResponsesConfig::default();
    println!("{}", valkyrie_experiments::responses::run(&cfg).report);
}
