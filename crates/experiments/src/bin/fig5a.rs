//! Regenerates Fig. 5a (false-positive slowdowns across the roster).
fn main() {
    let cfg = valkyrie_experiments::fig5::Fig5Config::default();
    println!("{}", valkyrie_experiments::fig5::run_5a(&cfg).report);
}
