//! Runs the two-level detection study (Section VII recommendation).
fn main() {
    let cfg = valkyrie_experiments::ensemble::EnsembleConfig::default();
    println!("{}", valkyrie_experiments::ensemble::run(&cfg).report);
}
