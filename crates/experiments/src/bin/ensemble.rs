//! Runs the two-level detection study (Section VII recommendation) and
//! the heterogeneous-cadence fusion sweep built on top of it.
//!
//! `--quick` runs both at the reduced scale used by the test suite and
//! the CI smoke (same code paths, smaller fleet and horizon).
use valkyrie_experiments::ensemble;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ensemble::EnsembleConfig::quick()
    } else {
        ensemble::EnsembleConfig::default()
    };
    println!("{}", ensemble::run(&cfg).report);
    let sweep = if quick {
        ensemble::FusionSweepConfig::quick()
    } else {
        ensemble::FusionSweepConfig::default()
    };
    println!("{}", ensemble::run_fusion(&sweep).report);
}
