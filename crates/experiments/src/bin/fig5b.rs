//! Regenerates Fig. 5b (Valkyrie vs migration responses).
fn main() {
    let cfg = valkyrie_experiments::fig5::Fig5Config::default();
    let a = valkyrie_experiments::fig5::run_5a(&cfg);
    println!("{}", valkyrie_experiments::fig5::run_5b(&cfg, &a).report);
}
