//! Runs the adaptive-attacker (evasion) study.
fn main() {
    let cfg = valkyrie_experiments::evasion::EvasionConfig::default();
    println!("{}", valkyrie_experiments::evasion::run(&cfg).report);
}
