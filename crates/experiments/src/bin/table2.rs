//! Regenerates Table II (resource availability vs attack progress).
fn main() {
    let cfg = valkyrie_experiments::table2::Table2Config::default();
    println!("{}", valkyrie_experiments::table2::run(&cfg).report);
}
