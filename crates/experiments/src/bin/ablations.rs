//! Runs the design-choice ablation sweeps.
fn main() {
    println!("{}", valkyrie_experiments::ablations::run());
}
