//! Regenerates Fig. 4f.
fn main() {
    let cfg = valkyrie_experiments::fig4::Fig4Config::default();
    println!("{}", valkyrie_experiments::fig4::run_f(&cfg).report);
}
