//! Table I — survey of post-detection responses in existing runtime
//! detection countermeasures, with the requirements R1 (throttle attacks)
//! and R2 (spare benign programs) they satisfy.
//!
//! This is literature data encoded verbatim from the paper; the table is
//! regenerated so the repository's output matches the publication.

use crate::harness::TextTable;

/// How far a requirement is satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Req {
    /// Requirement not satisfied.
    No,
    /// Requirement partially satisfied.
    Partial,
    /// Requirement satisfied.
    Yes,
}

impl Req {
    fn glyph(self) -> &'static str {
        match self {
            Req::No => "x",
            Req::Partial => "~",
            Req::Yes => "v",
        }
    }
}

/// One surveyed countermeasure.
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Response strategy category.
    pub response: &'static str,
    /// Paper (first author + citation).
    pub paper: &'static str,
    /// R1: thwart the attack's progress.
    pub r1: Req,
    /// R2: minimally affect benign programs.
    pub r2: Req,
    /// Reported false positives.
    pub fpr: &'static str,
}

/// The paper's Table I rows.
pub fn survey() -> Vec<SurveyRow> {
    use Req::*;
    let rows = [
        ("Not specified", "Alam et al. [12]", No, No, "5-7%"),
        ("Not specified", "Briongos et al. [19]", No, No, "1.6-4.3%"),
        (
            "Not specified",
            "Chiapetta et al. [23]",
            No,
            No,
            "Not reported",
        ),
        ("Not specified", "Gulmezoglu et al. [32]", No, No, "0.21%"),
        ("Not specified", "Mushtaq et al. [46]", No, No, "1-30%"),
        ("Not specified", "Mushtaq et al. [47]", No, No, "5%"),
        ("Not specified", "Wang et al. [64]", No, No, "up to 13.6%"),
        ("Not specified", "Karapoola et al. [33]", No, No, "0.01%"),
        ("Not specified", "Ahmed et al. [10]", No, No, "0.58%"),
        ("Not specified", "Vig et al. [63]", No, No, "1%"),
        ("Not specified", "Pott et al. [56]", No, No, "0.2%"),
        ("Not specified", "Tahir et al. [61]", No, No, "0.25%"),
        ("Not specified", "Mani et al. [40]", No, No, "0.2-3.8%"),
        ("Warning", "Kulah et al. [38]", Partial, No, "Not reported"),
        (
            "Migration",
            "Zhang et al. [69]",
            Yes,
            Partial,
            "Not reported",
        ),
        (
            "Migration",
            "Nomani et al. [49]",
            Yes,
            Partial,
            "Not reported",
        ),
        ("Termination", "Mushtaq et al. [48]", Yes, No, "1-3%"),
        ("Termination", "Payer [53]", Yes, No, "Not reported"),
        ("DRAM responses", "Aweke et al. [14]", Yes, Yes, "1%"),
        ("DRAM responses", "Yaglikci et al. [65]", Yes, Yes, "0.01%"),
        (
            "Systematic throttling + eventual termination",
            "Valkyrie (this paper)",
            Yes,
            Yes,
            "Same as augmented detector",
        ),
    ];
    rows.into_iter()
        .map(|(response, paper, r1, r2, fpr)| SurveyRow {
            response,
            paper,
            r1,
            r2,
            fpr,
        })
        .collect()
}

/// Renders Table I.
pub fn run() -> String {
    let mut t = TextTable::new(vec![
        "Post-detection response",
        "Paper",
        "R1",
        "R2",
        "False positives reported",
    ]);
    for row in survey() {
        t.row(vec![
            row.response.to_string(),
            row.paper.to_string(),
            row.r1.glyph().to_string(),
            row.r2.glyph().to_string(),
            row.fpr.to_string(),
        ]);
    }
    format!(
        "Table I — existing post-detection responses (v = satisfied, ~ = partial, x = not)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_21_rows_and_only_valkyrie_satisfies_both_generally() {
        let rows = survey();
        assert_eq!(rows.len(), 21);
        let full: Vec<_> = rows
            .iter()
            .filter(|r| r.r1 == Req::Yes && r.r2 == Req::Yes)
            .collect();
        // DRAM responses satisfy both but only for rowhammer; Valkyrie is
        // the only general solution.
        assert_eq!(full.len(), 3);
        assert!(full.iter().any(|r| r.paper.contains("Valkyrie")));
    }

    #[test]
    fn render_contains_key_entries() {
        let s = run();
        assert!(s.contains("Valkyrie"));
        assert!(s.contains("Payer"));
        assert!(s.contains("Table I"));
    }
}
