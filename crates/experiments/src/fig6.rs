//! Fig. 6 — rowhammer, ransomware and cryptominer case studies.

use crate::fig4::benign_baseline;
use crate::harness::{fmt, TextTable};
use crate::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use valkyrie_attacks::cryptominer::Cryptominer;
use valkyrie_attacks::ransomware::Ransomware;
use valkyrie_attacks::rowhammer::RowhammerAttack;
use valkyrie_core::{EngineConfig, ShareActuator, ThrottleLaw};
use valkyrie_detect::{Detector, LstmDetector, StatisticalDetector};
use valkyrie_ml::dataset::{generate_corpus, CorpusConfig};
use valkyrie_ml::{Lstm, LstmConfig, Standardizer};
use valkyrie_sim::fs::SimFs;
use valkyrie_sim::machine::{report_for, Machine, MachineConfig};
use valkyrie_sim::Pid;

/// Fig. 6 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Config {
    /// Epochs for the *without Valkyrie* rowhammer run.
    pub hammer_epochs_without: u64,
    /// Epochs for the throttled (suspicious-state) rowhammer run — the
    /// paper runs a full day; the default simulates 30 minutes.
    pub hammer_epochs_with: u64,
    /// Epochs for the ransomware / miner runs.
    pub epochs: u64,
    /// Measurements required (`N*`).
    pub n_star: u64,
    /// Train the paper's LSTM detector for the ransomware study (slower);
    /// otherwise the statistical detector stands in.
    pub use_lstm: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Self {
            hammer_epochs_without: 4000,
            hammer_epochs_with: 18_000, // 30 simulated minutes
            epochs: 20,
            n_star: 20,
            use_lstm: true,
            seed: 0xF166,
        }
    }
}

impl Fig6Config {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Self {
            hammer_epochs_without: 1500,
            hammer_epochs_with: 3000,
            epochs: 15,
            n_star: 12,
            use_lstm: false,
            seed: 0xF166,
        }
    }
}

fn scheduler_engine(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
        .build()
        .expect("static config is valid")
}

fn cgroup_cpu_engine(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .build()
        .expect("static config is valid")
}

fn cgroup_fs_engine(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::new(
            valkyrie_core::ResourceKind::Filesystem,
            ThrottleLaw::HalvePerEvent,
            1.0 / 128.0,
        ))
        .build()
        .expect("static config is valid")
}

/// Fig. 6a result — rowhammer bit flips.
#[derive(Debug, Clone)]
pub struct Fig6aResult {
    /// Flips without Valkyrie and the epochs measured.
    pub flips_without: u64,
    /// Epochs of the unthrottled run.
    pub epochs_without: u64,
    /// Flips while throttled in the suspicious state (paper: 0 in a day).
    pub flips_with: u64,
    /// Epochs of the throttled run.
    pub epochs_with: u64,
    /// Rendered report.
    pub report: String,
}

/// Fig. 6a — rowhammer with and without Valkyrie.
///
/// The *with* run keeps the attack in the suspicious state (large `N*`) to
/// demonstrate that throttling alone already reduces the flip count to
/// exactly zero: the attacker can no longer cross the DRAM disturbance
/// threshold within any refresh window.
pub fn run_a(config: &Fig6Config) -> Fig6aResult {
    // Without Valkyrie.
    let mut m = Machine::new(MachineConfig {
        seed: config.seed,
        ..MachineConfig::default()
    });
    let pid = m.spawn(Box::new(RowhammerAttack::default()));
    crate::fig4::spawn_background(&mut m);
    let mut reports = Vec::new();
    for _ in 0..config.hammer_epochs_without {
        m.run_epoch_into(&mut reports);
    }
    let flips_without = m.dram().flipped_bits();
    let _ = pid;

    // With Valkyrie (suspicious state for the whole run).
    let detector = StatisticalDetector::fit_normalized(&benign_baseline(config.seed), 3.5);
    let machine = Machine::new(MachineConfig {
        seed: config.seed ^ 1,
        ..MachineConfig::default()
    });
    let mut run = AugmentedRun::new(
        machine,
        scheduler_engine(config.hammer_epochs_with + 1),
        detector,
        ScenarioConfig::default(),
    );
    let pid2 = run
        .machine_mut()
        .spawn(Box::new(RowhammerAttack::default()));
    crate::fig4::spawn_background(run.machine_mut());
    run.watch(pid2);
    run.run(config.hammer_epochs_with);
    let flips_with = run.machine().dram().flipped_bits();

    let report = format!(
        "Fig. 6a — rowhammer bit flips\n\n\
         without Valkyrie: {} flips in {:.0} s\n\
         with Valkyrie (suspicious state): {} flips in {:.0} s (paper: 0 flips in a day)\n",
        flips_without,
        config.hammer_epochs_without as f64 * 0.1,
        flips_with,
        config.hammer_epochs_with as f64 * 0.1,
    );
    Fig6aResult {
        flips_without,
        epochs_without: config.hammer_epochs_without,
        flips_with,
        epochs_with: config.hammer_epochs_with,
        report,
    }
}

/// Fig. 6b result — ransomware encryption.
#[derive(Debug, Clone)]
pub struct Fig6bResult {
    /// MB encrypted without Valkyrie over the run.
    pub mb_without: f64,
    /// MB encrypted with the CPU actuator.
    pub mb_with_cpu: f64,
    /// MB encrypted with the filesystem actuator.
    pub mb_with_fs: f64,
    /// Rendered report.
    pub report: String,
}

/// Trains the paper's ransomware LSTM detector (20-in / 8-hidden) on the
/// generated corpus.
pub fn train_ransomware_lstm(seed: u64) -> LstmDetector {
    let corpus = generate_corpus(&CorpusConfig {
        ransomware_variants: 30,
        benign_programs: 30,
        trace_len: 30,
        seed,
    });
    let flat = corpus.flatten();
    let standardizer = Standardizer::fit(&flat.features);
    let seqs: Vec<Vec<Vec<f64>>> = corpus
        .sequences
        .iter()
        .map(|s| valkyrie_detect::ml_backed::sequence_with_deltas(&standardizer.transform_all(s)))
        .collect();
    let lstm = Lstm::train(
        &LstmConfig::paper_ransomware().with_epochs(25),
        &seqs,
        &corpus.labels,
    );
    LstmDetector::new("lstm-ransomware", lstm, standardizer)
}

enum RansomDetector {
    Lstm(Box<LstmDetector>),
    Statistical(StatisticalDetector),
}

impl Detector for RansomDetector {
    fn name(&self) -> &str {
        match self {
            RansomDetector::Lstm(d) => d.name(),
            RansomDetector::Statistical(d) => d.name(),
        }
    }
    fn infer(
        &mut self,
        pid: valkyrie_core::ProcessId,
        window: &valkyrie_hpc::SampleWindow,
    ) -> valkyrie_core::Classification {
        match self {
            RansomDetector::Lstm(d) => d.infer(pid, window),
            RansomDetector::Statistical(d) => d.infer(pid, window),
        }
    }
}

/// The Fig. 6b victim corpus. Generated once per figure (the SoA [`SimFs`]
/// builds without per-file allocation) and snapshotted into each of the
/// three runs' machines.
fn ransomware_fs(seed: u64) -> SimFs {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF5);
    SimFs::generate(&mut rng, 300_000, 1 << 20)
}

fn ransomware_machine(seed: u64, fs: &SimFs) -> Machine {
    let mut m = Machine::new(MachineConfig {
        seed,
        ..MachineConfig::default()
    });
    m.restore_fs(fs);
    m
}

fn run_ransomware(
    config: &Fig6Config,
    fs: &SimFs,
    engine: Option<EngineConfig>,
    lever: CpuLever,
) -> (f64, Vec<f64>) {
    let detector = if config.use_lstm {
        RansomDetector::Lstm(Box::new(train_ransomware_lstm(config.seed)))
    } else {
        RansomDetector::Statistical(StatisticalDetector::fit_normalized(
            &benign_baseline(config.seed),
            3.5,
        ))
    };
    let machine = ransomware_machine(config.seed, fs);
    match engine {
        None => {
            let mut m = machine;
            let pid = m.spawn(Box::new(Ransomware::default()));
            let mut series = Vec::new();
            let mut total = 0.0;
            let mut reports = Vec::with_capacity(1);
            for _ in 0..config.epochs {
                m.run_epoch_into(&mut reports);
                let p = report_for(&reports, pid).map_or(0.0, |x| x.progress);
                total += p;
                series.push(p);
            }
            (total / 1e6, series)
        }
        Some(cfg) => {
            let mut run = AugmentedRun::new(
                machine,
                cfg,
                detector,
                ScenarioConfig {
                    cpu_lever: lever,
                    window: config.n_star as usize * 2,
                    shards: 1,
                    ..ScenarioConfig::default()
                },
            );
            let pid = run.machine_mut().spawn(Box::new(Ransomware::default()));
            run.watch(pid);
            let mut series = Vec::new();
            let mut total = 0.0;
            for _ in 0..config.epochs {
                let r = run.step_ref();
                let p = report_for(r, pid).map_or(0.0, |x| x.progress);
                total += p;
                series.push(p);
            }
            (total / 1e6, series)
        }
    }
}

/// Fig. 6b — ransomware data encrypted with and without Valkyrie.
pub fn run_b(config: &Fig6Config) -> Fig6bResult {
    let fs = ransomware_fs(config.seed);
    let (mb_without, s_without) = run_ransomware(config, &fs, None, CpuLever::CgroupQuota);
    let (mb_with_cpu, s_cpu) = run_ransomware(
        config,
        &fs,
        Some(cgroup_cpu_engine(config.n_star)),
        CpuLever::CgroupQuota,
    );
    let (mb_with_fs, s_fs) = run_ransomware(
        config,
        &fs,
        Some(cgroup_fs_engine(config.n_star)),
        CpuLever::CgroupQuota,
    );

    let mut t = TextTable::new(vec![
        "epoch",
        "MB/s without",
        "MB/s CPU-throttled",
        "MB/s FS-throttled",
    ]);
    for e in 0..config.epochs as usize {
        t.row(vec![
            (e + 1).to_string(),
            fmt(s_without[e] / 1e5, 2),
            fmt(s_cpu[e] / 1e5, 2),
            fmt(s_fs[e] / 1e5, 2),
        ]);
    }
    let report = format!(
        "Fig. 6b — ransomware encryption with and without Valkyrie\n\n{}\n\
         total encrypted in {} epochs: without {:.1} MB | CPU actuator {:.2} MB | FS actuator {:.2} MB\n\
         (paper: ~233 MB vs ~3.5 MB before termination; rates 11.67 MB/s -> 152 KB/s CPU, 1.5 MB/s FS)\n",
        t.render(),
        config.epochs,
        mb_without,
        mb_with_cpu,
        mb_with_fs,
    );
    Fig6bResult {
        mb_without,
        mb_with_cpu,
        mb_with_fs,
        report,
    }
}

/// Fig. 6c result — cryptominer hash rate.
#[derive(Debug, Clone)]
pub struct Fig6cResult {
    /// Hashes per second without Valkyrie.
    pub rate_without: f64,
    /// Hashes per second in the suspicious state with Valkyrie.
    pub rate_with: f64,
    /// Suspicious-state slowdown, percent.
    pub slowdown_pct: f64,
    /// Rendered report.
    pub report: String,
}

/// Fig. 6c — cryptominer hash rate with and without Valkyrie.
pub fn run_c(config: &Fig6Config) -> Fig6cResult {
    // Without.
    let mut m = Machine::new(MachineConfig {
        seed: config.seed,
        ..MachineConfig::default()
    });
    let pid: Pid = m.spawn(Box::new(Cryptominer::default()));
    let mut hashes_without = 0.0;
    let mut reports = Vec::with_capacity(1);
    for _ in 0..config.epochs {
        m.run_epoch_into(&mut reports);
        hashes_without += report_for(&reports, pid).map_or(0.0, |r| r.progress);
    }

    // With (large N* keeps the miner in the suspicious state so the rate is
    // measured under throttling, as in the paper's figure).
    let detector = StatisticalDetector::fit_normalized(&benign_baseline(config.seed), 3.2);
    let machine = Machine::new(MachineConfig {
        seed: config.seed ^ 1,
        ..MachineConfig::default()
    });
    let mut run = AugmentedRun::new(
        machine,
        cgroup_cpu_engine(config.epochs * 2),
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: config.epochs as usize,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid2 = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    run.watch(pid2);
    // The paper reports the *suspicious-state* slowdown: skip the ramp-up
    // epochs while the threat index is still climbing.
    let ramp = config.epochs.min(8);
    for _ in 0..ramp {
        run.step_ref();
    }
    let mut hashes_with = 0.0;
    for _ in 0..config.epochs {
        hashes_with += report_for(run.step_ref(), pid2).map_or(0.0, |r| r.progress);
    }

    let secs = config.epochs as f64 * 0.1;
    let rate_without = hashes_without / secs;
    let rate_with = hashes_with / secs;
    let slowdown = (1.0 - hashes_with / hashes_without) * 100.0;
    let report = format!(
        "Fig. 6c — cryptominer hash rate\n\n\
         without Valkyrie: {:.0} hashes/s\n\
         with Valkyrie (suspicious state): {:.0} hashes/s\n\
         slowdown: {:.2}% (paper: 99.04%)\n",
        rate_without, rate_with, slowdown,
    );
    Fig6cResult {
        rate_without,
        rate_with,
        slowdown_pct: slowdown,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_throttled_rowhammer_never_flips() {
        let r = run_a(&Fig6Config::quick());
        assert!(r.flips_without > 0, "unthrottled run must flip bits");
        assert_eq!(r.flips_with, 0, "throttled run must never flip");
    }

    #[test]
    fn fig6b_throttling_cuts_encryption_by_orders_of_magnitude() {
        let r = run_b(&Fig6Config::quick());
        assert!(r.mb_without > 10.0, "without: {} MB", r.mb_without);
        // The first epochs run at full speed while the threat index ramps;
        // the steady-state rate is ~1% (the paper's 152 KB/s).
        assert!(
            r.mb_with_cpu < r.mb_without / 4.0,
            "cpu throttle: {} MB vs {} MB",
            r.mb_with_cpu,
            r.mb_without
        );
        assert!(
            r.mb_with_fs < r.mb_without,
            "fs throttle: {} MB",
            r.mb_with_fs
        );
    }

    #[test]
    fn fig6c_miner_slowdown_is_about_99_percent() {
        let r = run_c(&Fig6Config::quick());
        assert!(r.slowdown_pct > 90.0, "miner slowdown {}%", r.slowdown_pct);
    }
}
