//! Fig. 5 — false-positive slowdowns on benign benchmarks.
//!
//! * Fig. 5a: every roster benchmark runs to completion behind Valkyrie and
//!   the statistical detector (cyclic monitoring, majority verdicts at
//!   `N*`); the slowdown is the relative increase in completion time.
//! * Fig. 5b: the same false-positive traces handled by the migration
//!   baselines (CPU-core migration, system/VM migration) for comparison.

use crate::harness::{geo_mean_pct, mean, pct, TextTable};
use crate::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valkyrie_core::baselines::ConsecutiveTermination;
use valkyrie_core::migration::{migration_progress, MigrationPolicy};
use valkyrie_core::{AssessmentFn, Classification, EngineConfig, ShareActuator};
use valkyrie_detect::{StatisticalDetector, VotingDetector};
use valkyrie_sim::machine::Machine;
use valkyrie_sim::Platform;
use valkyrie_workloads::{
    multithreaded_roster, roster, spawn_team, BenchmarkSpec, BenchmarkWorkload,
};

/// Fig. 5 parameters.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Measurements per monitoring cycle (`N*`).
    pub n_star: u64,
    /// Detector threshold in σ.
    pub threshold: f64,
    /// Divide nominal benchmark runtimes by this factor (test speed-up).
    pub runtime_divisor: u64,
    /// Platform (Fig. 5a uses the i7-3770, the paper's 1 %-geo-mean box).
    pub platform: Platform,
    /// Multiplier on each benchmark's burst propensity (platform noise).
    pub burst_scale: f64,
    /// Include the multi-threaded roster.
    pub multithreaded: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            n_star: 40,
            threshold: 4.0,
            runtime_divisor: 1,
            platform: Platform::i7_3770(),
            burst_scale: 1.0,
            multithreaded: true,
            seed: 0xF165,
        }
    }
}

impl Fig5Config {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Self {
            runtime_divisor: 5,
            multithreaded: false,
            ..Self::default()
        }
    }
}

/// One benchmark's measured slowdown.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownRow {
    /// Benchmark name.
    pub name: String,
    /// Suite label.
    pub suite: &'static str,
    /// Completion epochs without Valkyrie.
    pub baseline_epochs: u64,
    /// Completion epochs with Valkyrie.
    pub valkyrie_epochs: u64,
    /// Slowdown in percent.
    pub slowdown_pct: f64,
    /// True if the process was (wrongly) terminated instead of finishing.
    pub terminated: bool,
}

/// Fig. 5a result.
#[derive(Debug, Clone)]
pub struct Fig5aResult {
    /// Single-threaded rows.
    pub rows: Vec<SlowdownRow>,
    /// Multi-threaded rows.
    pub mt_rows: Vec<SlowdownRow>,
    /// Rendered report.
    pub report: String,
}

fn detector(config: &Fig5Config) -> VotingDetector<StatisticalDetector> {
    // The fit is a pure function of {seed, threshold}; Fig. 5 builds one
    // detector per benchmark (77 of them), so cache the fitted inner and
    // hand each run a cheap clone with fresh vote state.
    let inner = crate::cache::get_or_build(
        crate::cache::CacheKey::new("fig5-statistical")
            .with(config.seed ^ 0xBA5E)
            .with_f64(config.threshold),
        || {
            let baseline = crate::fig4::benign_baseline(config.seed ^ 0xBA5E);
            StatisticalDetector::fit_normalized(&baseline, config.threshold)
        },
    );
    VotingDetector::new((*inner).clone(), config.n_star)
}

fn engine(config: &Fig5Config) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(config.n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
        .cyclic(true)
        .build()
        .expect("static config is valid")
}

fn scaled_spec(spec: &BenchmarkSpec, config: &Fig5Config) -> BenchmarkSpec {
    let mut s = spec.clone();
    s.epochs_to_complete = (s.epochs_to_complete / config.runtime_divisor).max(40);
    s.burst_prob = (s.burst_prob * config.burst_scale).min(0.9);
    s
}

/// Measures one single-threaded benchmark's completion time with Valkyrie.
fn run_single(spec: &BenchmarkSpec, config: &Fig5Config, seed: u64) -> SlowdownRow {
    let machine = Machine::new(config.platform.machine_config(seed));
    let mut run = AugmentedRun::new(
        machine,
        engine(config),
        detector(config),
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: config.n_star as usize * 3,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid = run
        .machine_mut()
        .spawn(Box::new(BenchmarkWorkload::new(spec.clone())));
    run.watch(pid);
    let baseline = spec.epochs_to_complete;
    let cap = baseline * 8;
    let mut epochs = 0;
    while epochs < cap && !run.machine().is_completed(pid) && run.machine().is_alive(pid) {
        run.step_ref();
        epochs += 1;
    }
    let terminated = !run.machine().is_alive(pid) && !run.machine().is_completed(pid);
    SlowdownRow {
        name: spec.name.to_string(),
        suite: spec.suite.label(),
        baseline_epochs: baseline,
        valkyrie_epochs: epochs,
        slowdown_pct: (epochs as f64 / baseline as f64 - 1.0) * 100.0,
        terminated,
    }
}

/// Measures one multi-threaded team's completion time with Valkyrie.
///
/// Teams use the scheduler-weight lever: the four threads contend with each
/// other, so Eq. 8 weight scaling genuinely shifts CPU time away from a
/// flagged thread — and the barrier makes the whole team wait for it.
fn run_team(spec: &BenchmarkSpec, config: &Fig5Config, seed: u64) -> SlowdownRow {
    // Baseline: the team without Valkyrie.
    let mut m = Machine::new(config.platform.machine_config(seed));
    let team = spawn_team(&mut m, spec);
    let cap = spec.epochs_to_complete * spec.threads as u64 * 8;
    let mut baseline = 0;
    let mut reports = Vec::new();
    while baseline < cap && !team.is_completed() {
        m.run_epoch_into(&mut reports);
        baseline += 1;
    }

    // With Valkyrie.
    let machine = Machine::new(config.platform.machine_config(seed ^ 0x2));
    let mut run = AugmentedRun::new(
        machine,
        engine(config),
        detector(config),
        ScenarioConfig {
            cpu_lever: CpuLever::SchedulerWeight,
            window: config.n_star as usize * 3,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let team2 = spawn_team(run.machine_mut(), spec);
    for pid in &team2.pids {
        run.watch(*pid);
    }
    let mut epochs = 0;
    while epochs < cap && !team2.is_completed() {
        run.step_ref();
        epochs += 1;
    }
    let terminated = team2
        .pids
        .iter()
        .any(|p| !run.machine().is_alive(*p) && !run.machine().is_completed(*p));
    SlowdownRow {
        name: spec.name.to_string(),
        suite: spec.suite.label(),
        baseline_epochs: baseline,
        valkyrie_epochs: epochs,
        slowdown_pct: (epochs as f64 / baseline.max(1) as f64 - 1.0) * 100.0,
        terminated,
    }
}

/// Runs Fig. 5a over the whole roster.
pub fn run_5a(config: &Fig5Config) -> Fig5aResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::new();
    for spec in roster() {
        let spec = scaled_spec(&spec, config);
        rows.push(run_single(&spec, config, rng.gen()));
    }
    let mut mt_rows = Vec::new();
    if config.multithreaded {
        for spec in multithreaded_roster() {
            let spec = scaled_spec(&spec, config);
            mt_rows.push(run_team(&spec, config, rng.gen()));
        }
    }

    let slowdowns: Vec<f64> = rows.iter().map(|r| r.slowdown_pct.max(0.0)).collect();
    let mt_slowdowns: Vec<f64> = mt_rows.iter().map(|r| r.slowdown_pct.max(0.0)).collect();
    let under1 = slowdowns.iter().filter(|&&s| s < 1.0).count();
    let under5 = slowdowns.iter().filter(|&&s| s < 5.0).count();
    let max_row = rows
        .iter()
        .max_by(|a, b| a.slowdown_pct.total_cmp(&b.slowdown_pct));

    let mut t = TextTable::new(vec![
        "benchmark",
        "suite",
        "baseline",
        "with Valkyrie",
        "slowdown",
    ]);
    for r in rows.iter().chain(mt_rows.iter()) {
        t.row(vec![
            r.name.clone(),
            r.suite.to_string(),
            r.baseline_epochs.to_string(),
            r.valkyrie_epochs.to_string(),
            pct(r.slowdown_pct),
        ]);
    }
    let mut report = format!(
        "Fig. 5a — false-positive slowdowns ({} single-threaded, {} multi-threaded)\n\n{}",
        rows.len(),
        mt_rows.len(),
        t.render()
    );
    report.push_str(&format!(
        "\nsingle-threaded: geo-mean {} | arith-mean {} | max {} ({}) | {}/{} < 1% | {}/{} < 5%\n",
        pct(geo_mean_pct(&slowdowns)),
        pct(mean(&slowdowns)),
        max_row.map_or_else(|| "-".into(), |r| pct(r.slowdown_pct)),
        max_row.map_or("-", |r| r.name.as_str()),
        under1,
        rows.len(),
        under5,
        rows.len(),
    ));
    report.push_str(
        "paper:          geo-mean 1.0% | arith-mean 2.8% | max 40.3% | 35/77 < 1% | 60/77 < 5%\n",
    );
    let terminated = rows
        .iter()
        .chain(mt_rows.iter())
        .filter(|r| r.terminated)
        .count();
    report.push_str(&format!(
        "benign processes wrongly terminated: {terminated} (Valkyrie's R2 target: 0)\n"
    ));
    if !mt_rows.is_empty() {
        report.push_str(&format!(
            "multi-threaded: arith-mean {} (paper: ~6.7%)\n",
            pct(mean(&mt_slowdowns))
        ));
    }
    Fig5aResult {
        rows,
        mt_rows,
        report,
    }
}

/// Fig. 5b result.
#[derive(Debug, Clone)]
pub struct Fig5bResult {
    /// Average slowdown with Valkyrie (from Fig. 5a rows).
    pub valkyrie_avg: f64,
    /// Average slowdown with CPU-core migration.
    pub core_migration_avg: f64,
    /// Average slowdown with system/VM migration.
    pub system_migration_avg: f64,
    /// Fraction of benign programs wrongly terminated by the
    /// 3-consecutive-classifications baseline (Mushtaq et al.).
    pub consecutive_kill_frac: f64,
    /// Rendered report.
    pub report: String,
}

/// Runs Fig. 5b using measured Fig. 5a rows for Valkyrie and replaying the
/// same false-positive propensities through the migration baselines.
pub fn run_5b(config: &Fig5Config, fig5a: &Fig5aResult) -> Fig5bResult {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5B);
    let mut core = Vec::new();
    let mut system = Vec::new();
    let consecutive = ConsecutiveTermination::new(3);
    let mut killed = 0usize;
    let mut total = 0usize;
    for spec in roster() {
        let spec = scaled_spec(&spec, config);
        let trace: Vec<Classification> = (0..spec.epochs_to_complete)
            .map(|_| {
                if rng.gen::<f64>() < spec.burst_prob {
                    Classification::Malicious
                } else {
                    Classification::Benign
                }
            })
            .collect();
        let base: f64 = trace.len() as f64;
        let core_p: f64 = migration_progress(&trace, MigrationPolicy::core_migration())
            .iter()
            .sum();
        let sys_p: f64 = migration_progress(&trace, MigrationPolicy::system_migration())
            .iter()
            .sum();
        // Completion-time slowdown given uniform progress loss.
        core.push((base / core_p.max(1e-9) - 1.0) * 100.0);
        system.push((base / sys_p.max(1e-9) - 1.0) * 100.0);
        total += 1;
        if !consecutive.run(&trace).survived() {
            killed += 1;
        }
    }
    let kill_frac = killed as f64 / total.max(1) as f64;
    let valkyrie_avg = mean(
        &fig5a
            .rows
            .iter()
            .map(|r| r.slowdown_pct.max(0.0))
            .collect::<Vec<_>>(),
    );
    let core_avg = mean(&core);
    let sys_avg = mean(&system);
    let report = format!(
        "Fig. 5b — post-detection response comparison (mean FP slowdown)\n\n\
         Valkyrie                      : {}\n\
         CPU-core migration            : {}  ({:.1}x Valkyrie; paper ~1.5x)\n\
         system/VM migration           : {}  ({:.1}x Valkyrie; paper ~4x)\n\
         3-consecutive termination     : {:.0}% of benign programs KILLED\n\
         (Valkyrie wrongly terminated  : 0)\n",
        pct(valkyrie_avg),
        pct(core_avg),
        core_avg / valkyrie_avg.max(1e-9),
        pct(sys_avg),
        sys_avg / valkyrie_avg.max(1e-9),
        kill_frac * 100.0,
    );
    Fig5bResult {
        valkyrie_avg,
        core_migration_avg: core_avg,
        system_migration_avg: sys_avg,
        consecutive_kill_frac: kill_frac,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig5Config {
        Fig5Config {
            runtime_divisor: 10,
            multithreaded: false,
            ..Fig5Config::default()
        }
    }

    #[test]
    fn clean_benchmark_has_no_slowdown() {
        let config = tiny_config();
        let clean = roster()
            .into_iter()
            .find(|s| s.burst_prob == 0.0)
            .expect("clean program exists");
        let row = run_single(&scaled_spec(&clean, &config), &config, 7);
        assert!(
            row.slowdown_pct.abs() < 2.0,
            "{}: {}%",
            row.name,
            row.slowdown_pct
        );
    }

    #[test]
    fn blender_r_is_slowed_but_survives() {
        let config = tiny_config();
        let blender = roster()
            .into_iter()
            .find(|s| s.name == "blender_r")
            .unwrap();
        let row = run_single(&scaled_spec(&blender, &config), &config, 9);
        assert!(
            row.slowdown_pct > 5.0,
            "blender_r slowdown {}%",
            row.slowdown_pct
        );
        // It completed (was not terminated): epochs < cap.
        assert!(row.valkyrie_epochs < row.baseline_epochs * 8);
    }

    #[test]
    fn migration_baselines_are_worse_than_valkyrie() {
        let config = tiny_config();
        // A small synthetic 5a result with a 1.5% average.
        let fig5a = Fig5aResult {
            rows: vec![SlowdownRow {
                name: "synthetic".into(),
                suite: "SPEC-2017",
                baseline_epochs: 100,
                valkyrie_epochs: 101,
                slowdown_pct: 1.0,
                terminated: false,
            }],
            mt_rows: vec![],
            report: String::new(),
        };
        let r = run_5b(&config, &fig5a);
        assert!(r.core_migration_avg > r.valkyrie_avg);
        assert!(r.system_migration_avg > r.core_migration_avg);
    }
}
