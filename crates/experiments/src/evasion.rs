//! Evasion study: can an adaptive attacker game the response framework?
//!
//! The paper's discussion scopes adversarial attacks on the *detector* out
//! of scope; this study asks the complementary question about the
//! *response*: an attacker that knows Valkyrie is deployed can duty-cycle —
//! attack, pause while the compensation mechanism decays its threat index,
//! resume — hoping to keep its resources and dodge termination. Three
//! tables quantify why that does not pay:
//!
//! 1. **Duty-cycle sweep** — progress and termination epoch for a range of
//!    active/dormant patterns against the default configuration. Dormant
//!    epochs still count toward `N*`, so the terminable verdict is not
//!    postponed, and every dormant epoch is progress the attacker forfeits.
//! 2. **Hardening sweep** — the best evasive strategy replayed against
//!    steeper penalty functions: `F_p` is the knob that shrinks the
//!    attacker's viable duty cycle.
//! 3. **Detector-quality tail** — expected post-`N*` progress as a function
//!    of the detector's TPR (the `(1 − p)/p` geometric tail), measured
//!    against the analytic bound.

use crate::harness::{fmt, pct, TextTable};
use valkyrie_core::evasion::{
    expected_terminable_progress, run_evasion, AttackerStrategy, DetectorModel, EvasionOutcome,
    EvasionScenario,
};
use valkyrie_core::{AssessmentFn, EngineConfig, ShareActuator};

/// Configuration of the evasion study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionConfig {
    /// Valkyrie's measurement requirement.
    pub n_star: u64,
    /// Observation horizon, in epochs.
    pub horizon: u64,
    /// Detector true-positive rate while the attacker works.
    pub tpr: f64,
    /// Detector false-positive rate while the attacker sleeps.
    pub fpr: f64,
    /// Trials per stochastic measurement.
    pub trials: u64,
}

impl Default for EvasionConfig {
    fn default() -> Self {
        Self {
            n_star: 30,
            horizon: 120,
            tpr: 0.90,
            fpr: 0.04,
            trials: 30,
        }
    }
}

/// One strategy's measured outcome (mean over trials).
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyRow {
    /// Strategy label.
    pub strategy: String,
    /// Mean attack progress under Valkyrie (unthrottled-epoch units).
    pub progress: f64,
    /// Mean unimpeded progress of the same strategy.
    pub unimpeded: f64,
    /// Mean slowdown, percent.
    pub slowdown_pct: f64,
    /// Fraction of trials in which the attacker was terminated.
    pub terminated_pct: f64,
    /// Mean termination epoch among terminated trials.
    pub mean_termination_epoch: f64,
}

/// Structured result of the evasion study.
#[derive(Debug, Clone)]
pub struct EvasionResult {
    /// Duty-cycle sweep rows.
    pub duty_cycle: Vec<StrategyRow>,
    /// Hardening sweep rows (penalty function label, sawtooth progress).
    pub hardening: Vec<(String, f64)>,
    /// Rendered report.
    pub report: String,
}

fn engine_config(n_star: u64, fp: AssessmentFn) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(fp)
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .build()
        .expect("static config is valid")
}

pub(crate) fn label(strategy: AttackerStrategy) -> String {
    match strategy {
        AttackerStrategy::AlwaysActive => "always active".into(),
        AttackerStrategy::DutyCycle { active, dormant } => {
            format!("duty cycle {active} on / {dormant} off")
        }
        AttackerStrategy::Sprint { active_epochs } => format!("sprint {active_epochs} epochs"),
        AttackerStrategy::ThreatAdaptive { resume_above } => {
            format!("sawtooth (resume at {:.0}% share)", resume_above * 100.0)
        }
    }
}

fn measure(config: &EngineConfig, strategy: AttackerStrategy, cfg: &EvasionConfig) -> StrategyRow {
    let detector = DetectorModel::new(cfg.tpr, cfg.fpr).expect("rates validated by config");
    let mut acc = EvasionOutcome {
        progress: 0.0,
        unimpeded: 0.0,
        terminated_at: None,
        active_epochs: 0,
    };
    let mut terminated = 0u64;
    let mut term_epoch_sum = 0.0;
    for seed in 0..cfg.trials {
        let scenario =
            EvasionScenario::new(strategy, detector, cfg.horizon).with_seed(0xE7A + seed);
        let out = run_evasion(config, &scenario);
        acc.progress += out.progress;
        acc.unimpeded += out.unimpeded;
        if let Some(t) = out.terminated_at {
            terminated += 1;
            term_epoch_sum += t as f64;
        }
    }
    let n = cfg.trials as f64;
    let progress = acc.progress / n;
    let unimpeded = acc.unimpeded / n;
    StrategyRow {
        strategy: label(strategy),
        progress,
        unimpeded,
        slowdown_pct: if unimpeded > 0.0 {
            (1.0 - progress / unimpeded) * 100.0
        } else {
            0.0
        },
        terminated_pct: 100.0 * terminated as f64 / n,
        mean_termination_epoch: if terminated > 0 {
            term_epoch_sum / terminated as f64
        } else {
            f64::NAN
        },
    }
}

/// The strategies swept by [`run`].
pub fn strategies(n_star: u64) -> Vec<AttackerStrategy> {
    vec![
        AttackerStrategy::AlwaysActive,
        AttackerStrategy::DutyCycle {
            active: 1,
            dormant: 1,
        },
        AttackerStrategy::DutyCycle {
            active: 1,
            dormant: 3,
        },
        AttackerStrategy::DutyCycle {
            active: 3,
            dormant: 1,
        },
        AttackerStrategy::Sprint {
            active_epochs: n_star / 2,
        },
        AttackerStrategy::ThreatAdaptive { resume_above: 0.95 },
        AttackerStrategy::ThreatAdaptive { resume_above: 0.70 },
    ]
}

/// Runs the full evasion study.
pub fn run(cfg: &EvasionConfig) -> EvasionResult {
    let base = engine_config(cfg.n_star, AssessmentFn::incremental());

    let duty_cycle: Vec<StrategyRow> = strategies(cfg.n_star)
        .into_iter()
        .map(|s| measure(&base, s, cfg))
        .collect();

    // Hardening: the most evasive strategy from the sweep, replayed under
    // steeper penalty functions.
    let sawtooth = AttackerStrategy::ThreatAdaptive { resume_above: 0.70 };
    let hardening: Vec<(String, f64)> = [
        ("incremental (x + 1)", AssessmentFn::incremental()),
        ("linear (1.5x + 1)", AssessmentFn::linear(1.5, 1.0)),
        ("linear (x + 3)", AssessmentFn::linear(1.0, 3.0)),
        ("exponential (2ix + 1)", AssessmentFn::exponential(2.0)),
    ]
    .into_iter()
    .map(|(name, f)| {
        let row = measure(&engine_config(cfg.n_star, f), sawtooth, cfg);
        (name.to_string(), row.progress)
    })
    .collect();

    let mut t1 = TextTable::new(vec![
        "strategy",
        "progress",
        "unimpeded",
        "slowdown",
        "terminated",
        "mean kill epoch",
    ]);
    for r in &duty_cycle {
        t1.row(vec![
            r.strategy.clone(),
            fmt(r.progress, 1),
            fmt(r.unimpeded, 1),
            pct(r.slowdown_pct),
            pct(r.terminated_pct),
            if r.mean_termination_epoch.is_nan() {
                "-".into()
            } else {
                fmt(r.mean_termination_epoch, 1)
            },
        ]);
    }
    let mut t2 = TextTable::new(vec!["penalty function", "sawtooth progress"]);
    for (name, p) in &hardening {
        t2.row(vec![name.clone(), fmt(*p, 2)]);
    }
    let mut t3 = TextTable::new(vec!["detector TPR", "expected post-N* progress"]);
    for tpr in [0.5, 0.7, 0.9, 0.95, 0.99, 1.0] {
        t3.row(vec![
            pct(tpr * 100.0),
            fmt(expected_terminable_progress(tpr), 2),
        ]);
    }
    let report = format!(
        "Evasion study — N* = {}, horizon {} epochs, detector TPR {:.0}% / FPR {:.0}%, \
         {} trials\n\n\
         1. Duty-cycle sweep (progress in unthrottled-epoch units):\n\n{}\n\
         2. Penalty-function hardening (sawtooth attacker):\n\n{}\n\
         3. Geometric tail after N* — analytic (1-p)/p bound:\n\n{}",
        cfg.n_star,
        cfg.horizon,
        cfg.tpr * 100.0,
        cfg.fpr * 100.0,
        cfg.trials,
        t1.render(),
        t2.render(),
        t3.render()
    );

    EvasionResult {
        duty_cycle,
        hardening,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> EvasionConfig {
        EvasionConfig {
            trials: 8,
            horizon: 80,
            ..EvasionConfig::default()
        }
    }

    fn row<'a>(r: &'a EvasionResult, prefix: &str) -> &'a StrategyRow {
        r.duty_cycle
            .iter()
            .find(|x| x.strategy.starts_with(prefix))
            .unwrap()
    }

    #[test]
    fn no_strategy_beats_the_always_active_unimpeded_baseline() {
        let r = run(&quick());
        for row in &r.duty_cycle {
            assert!(
                row.progress <= row.unimpeded + 1e-9,
                "{} progressed past its own baseline",
                row.strategy
            );
        }
    }

    #[test]
    fn duty_cycling_trades_progress_for_survival() {
        let r = run(&quick());
        let always = row(&r, "always active");
        let sparse = row(&r, "duty cycle 1 on / 3 off");
        // The sparse attacker is flagged less often …
        assert!(sparse.terminated_pct <= always.terminated_pct + 1e-9);
        // … but achieves less absolute progress than the always-active one.
        assert!(sparse.progress < always.progress + always.unimpeded * 0.5);
        // Its own duty cycle already forfeits 3/4 of the horizon.
        assert!(sparse.unimpeded < 0.30 * 80.0);
    }

    #[test]
    fn every_aggressive_strategy_is_terminated() {
        let r = run(&quick());
        for prefix in ["always active", "duty cycle 3 on / 1 off"] {
            let row = row(&r, prefix);
            assert!(
                row.terminated_pct > 90.0,
                "{} survived too often: {}%",
                row.strategy,
                row.terminated_pct
            );
        }
    }

    #[test]
    fn hardening_monotonically_reduces_sawtooth_progress() {
        let r = run(&quick());
        let inc = r.hardening[0].1;
        let exp = r.hardening[3].1;
        assert!(exp <= inc + 1e-9, "exp {exp} vs inc {inc}");
    }

    #[test]
    fn report_contains_all_sections() {
        let r = run(&quick());
        for key in [
            "Duty-cycle sweep",
            "hardening",
            "Geometric tail",
            "sawtooth",
        ] {
            assert!(r.report.contains(key), "missing {key}");
        }
    }
}
