//! Table III — the case-study configuration matrix: which detector,
//! assessment functions and actuator each evaluated attack uses.
//!
//! Rendered from the same constants the Fig. 4 / Fig. 6 scenarios use, so
//! the table always reflects the code.

use crate::harness::TextTable;

/// One case-study configuration row.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Case-study family.
    pub family: &'static str,
    /// Concrete attack.
    pub attack: &'static str,
    /// Progress metric of the attack.
    pub progress: &'static str,
    /// The detector Valkyrie augments.
    pub detector: &'static str,
    /// Penalty assessment function.
    pub fp: &'static str,
    /// Compensation assessment function.
    pub fc: &'static str,
    /// Actuator function.
    pub actuator: &'static str,
}

/// The paper's Table III rows (matching the scenarios in this crate).
pub fn case_studies() -> Vec<CaseStudy> {
    let uarch = |attack, progress| CaseStudy {
        family: "Micro-architectural",
        attack,
        progress,
        detector: "Statistical, HPC-based",
        fp: "Incremental (Eq. 5)",
        fc: "Incremental (Eq. 6)",
        actuator: "OS-scheduler (Eq. 8)",
    };
    vec![
        uarch("L1-D cache attack on AES [50]", "Guessing entropy"),
        uarch("L1-I cache attack on RSA [9]", "Error rate"),
        uarch("Load-Store Buffer covert channel [22]", "Error rate"),
        uarch("CJAG high-speed covert channel [42]", "Bits transmitted"),
        uarch("LLC covert channel [66]", "Bits transmitted"),
        uarch("TLB covert channel [29]", "Bits transmitted"),
        CaseStudy {
            family: "Rowhammer",
            attack: "Rowhammer attack [1]",
            progress: "Bits flipped",
            detector: "Statistical, HPC-based",
            fp: "Incremental",
            fc: "Incremental",
            actuator: "OS-scheduler (Eq. 8)",
        },
        CaseStudy {
            family: "Ransomware",
            attack: "Open-sourced samples [3]-[7]",
            progress: "Bytes encrypted",
            detector: "DL model (LSTM), HPC-based",
            fp: "Incremental",
            fc: "Incremental",
            actuator: "Cgroup based (CPU + filesystem)",
        },
        CaseStudy {
            family: "Cryptominer",
            attack: "Open-sourced samples [52]",
            progress: "Hashes computed",
            detector: "Statistical, HPC-based",
            fp: "Incremental",
            fc: "Incremental",
            actuator: "Cgroup based (CPU)",
        },
    ]
}

/// Renders Table III.
pub fn run() -> String {
    let mut t = TextTable::new(vec![
        "Case study",
        "Attack",
        "Progress",
        "Detector",
        "Fp",
        "Fc",
        "Actuator",
    ]);
    for c in case_studies() {
        t.row(vec![
            c.family.to_string(),
            c.attack.to_string(),
            c.progress.to_string(),
            c.detector.to_string(),
            c.fp.to_string(),
            c.fc.to_string(),
            c.actuator.to_string(),
        ]);
    }
    format!(
        "Table III — case studies and Valkyrie configuration\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_case_studies() {
        assert_eq!(case_studies().len(), 9);
    }

    #[test]
    fn microarch_studies_use_scheduler_actuator() {
        for c in case_studies()
            .iter()
            .filter(|c| c.family == "Micro-architectural")
        {
            assert!(c.actuator.contains("scheduler"));
        }
    }

    #[test]
    fn ransomware_uses_lstm_and_cgroups() {
        let r = case_studies()
            .into_iter()
            .find(|c| c.family == "Ransomware")
            .unwrap();
        assert!(r.detector.contains("LSTM"));
        assert!(r.actuator.contains("Cgroup"));
    }

    #[test]
    fn render_is_complete() {
        let s = run();
        assert!(s.contains("Guessing entropy"));
        assert!(s.contains("Hashes computed"));
    }
}
