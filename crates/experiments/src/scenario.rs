//! The augmented-run driver: a simulated machine whose processes are
//! watched by a detector and governed by a Valkyrie engine (paper Fig. 2).
//!
//! Each epoch runs in three phases: the machine advances, the detector
//! infers every watched process, and the engine answers the whole epoch's
//! inferences in **one batch** through
//! [`ShardedEngine::observe_batch`] — the scenario layer is a direct
//! embedder of the scaling tier, and [`ScenarioConfig::shards`] picks the
//! partition count (responses are identical for every shard count).

use std::collections::{BTreeMap, HashMap};
use valkyrie_core::hash::FxBuildHasher;
use valkyrie_core::ProcessId;
use valkyrie_core::{
    Action, Classification, EngineConfig, EngineResponse, ExecutionMode, OverflowPolicy,
    ProcessState, ShardedEngine, Verdict,
};
use valkyrie_detect::Detector;
use valkyrie_hpc::SampleWindow;
use valkyrie_sim::machine::{EpochReport, Machine};
use valkyrie_sim::Pid;

/// Which machine lever the engine's CPU share drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuLever {
    /// Scale the CFS weight (the paper's Eq. 8 scheduler actuator, used by
    /// the micro-architectural and rowhammer case studies).
    SchedulerWeight,
    /// Set a cgroup `cpu.max`-style quota (used by the ransomware and
    /// cryptominer case studies).
    CgroupQuota,
}

/// Async-ingest wiring for a scenario: the epoch's inferences travel
/// through the engine's bounded per-shard rings
/// ([`valkyrie_core::ingest`]) instead of a synchronous `observe_batch`
/// call.
///
/// The scenario driver publishes and drains from the same thread, so
/// `capacity` must cover one epoch's observations per shard —
/// [`OverflowPolicy::Block`] on an undersized ring would wait for a drain
/// that cannot come until the publish loop finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOptions {
    /// Ring capacity, in observations per shard.
    pub capacity: usize,
    /// What a full ring does with the next observation.
    pub policy: OverflowPolicy,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            capacity: 4096,
            policy: OverflowPolicy::Block,
        }
    }
}

/// Scenario wiring options.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// How CPU shares map onto the machine.
    pub cpu_lever: CpuLever,
    /// Measurement-window capacity per process.
    pub window: usize,
    /// Engine shard count. Responses are identical for every value; more
    /// shards parallelise large per-epoch batches (multi-tenant machines).
    pub shards: usize,
    /// How the engine distributes per-epoch batches over its shards:
    /// per-tick scoped threads (default) or the persistent worker pool.
    /// Responses are identical either way; the pool wins when the scenario
    /// ticks continuously with large fleets.
    pub execution: ExecutionMode,
    /// When set, inferences reach the engine through the async ingest
    /// rings (publish, then drain) instead of `observe_batch`. With
    /// [`OverflowPolicy::Block`] and adequate capacity the histories are
    /// bit-for-bit identical to the synchronous path.
    pub ingest: Option<IngestOptions>,
    /// When `true`, each epoch's inference is the detector's *confidence*
    /// ([`valkyrie_detect::Detector::infer_confidence`]) carried as a
    /// [`Verdict`] (detector id 0) into the engine's weighted-evidence
    /// fusion path — weights, staleness decay and the escalation ladder
    /// come from the [`EngineConfig`]'s fusion settings. With the binary
    /// ladder and a detector reporting extreme confidences, histories are
    /// bit-for-bit identical to the classification path.
    pub confidence: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            cpu_lever: CpuLever::SchedulerWeight,
            window: 100,
            shards: 1,
            execution: ExecutionMode::ScopedSpawn,
            ingest: None,
            confidence: false,
        }
    }
}

/// Per-epoch record for one monitored process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Workload progress this epoch (`B_i(R_i)`).
    pub progress: f64,
    /// Fig. 3 state after this epoch's inference.
    pub state: ProcessState,
    /// CPU share Valkyrie enforced after this epoch.
    pub cpu_share: f64,
    /// Threat index after this epoch.
    pub threat: f64,
}

/// A machine + detector + Valkyrie engine loop.
///
/// Call [`AugmentedRun::watch`] on the processes Valkyrie should govern,
/// then [`AugmentedRun::step`] once per epoch.
pub struct AugmentedRun<D: Detector> {
    machine: Machine,
    engine: ShardedEngine,
    detector: D,
    config: ScenarioConfig,
    windows: HashMap<Pid, SampleWindow, FxBuildHasher>,
    history: HashMap<Pid, Vec<EpochRecord>, FxBuildHasher>,
    /// Per-epoch scratch, reused across steps.
    batch: Vec<(ProcessId, Classification)>,
    verdict_batch: Vec<(ProcessId, Verdict)>,
    progress: Vec<(Pid, f64, bool)>,
    reports: Vec<(Pid, EpochReport)>,
    responses: Vec<EngineResponse>,
    /// Last `(cpu, mem, fs)` lever triple enacted per process. The machine's
    /// controllers are stateless functions of their setting, so re-applying
    /// an unchanged triple is a no-op; skipping it saves the lever lookups
    /// in the (common) steady state where the response doesn't move.
    applied: HashMap<Pid, (f64, f64, f64), FxBuildHasher>,
}

impl<D: Detector> AugmentedRun<D> {
    /// Wires a machine, an engine configuration and a detector together.
    pub fn new(
        machine: Machine,
        engine_config: EngineConfig,
        detector: D,
        config: ScenarioConfig,
    ) -> Self {
        let mut engine =
            ShardedEngine::with_mode(engine_config, config.shards.max(1), 0, config.execution);
        if let Some(opts) = config.ingest {
            if config.confidence {
                let _ = engine.enable_verdict_ingest(opts.capacity, opts.policy);
            } else {
                let _ = engine.enable_ingest(opts.capacity, opts.policy);
            }
        }
        Self {
            machine,
            engine,
            detector,
            config,
            windows: HashMap::default(),
            history: HashMap::default(),
            batch: Vec::new(),
            verdict_batch: Vec::new(),
            progress: Vec::new(),
            reports: Vec::new(),
            responses: Vec::new(),
            applied: HashMap::default(),
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the underlying machine (spawning, filesystems...).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Registers `pid` for detection + response.
    pub fn watch(&mut self, pid: Pid) {
        self.windows
            .entry(pid)
            .or_insert_with(|| SampleWindow::new(self.config.window));
        self.history.entry(pid).or_default();
    }

    /// Per-epoch records of a watched process.
    pub fn history(&self, pid: Pid) -> &[EpochRecord] {
        self.history.get(&pid).map_or(&[], Vec::as_slice)
    }

    /// Current Fig. 3 state of a watched process (None before its first
    /// epoch).
    pub fn state(&self, pid: Pid) -> Option<ProcessState> {
        self.engine.state(pid.into())
    }

    /// Runs one epoch: machine, then detection, then one batched response.
    /// Thin allocating wrapper over [`AugmentedRun::step_ref`], kept for
    /// API compatibility.
    pub fn step(&mut self) -> BTreeMap<Pid, EpochReport> {
        self.step_ref().iter().copied().collect()
    }

    /// Runs one epoch: machine, then detection, then one batched response.
    /// Returns the epoch's reports in ascending-pid order (look up one
    /// process with [`valkyrie_sim::machine::report_for`]).
    /// Allocation-free in steady state: the
    /// machine fills a reusable buffer and the detection/response batches
    /// reuse their scratch.
    pub fn step_ref(&mut self) -> &[(Pid, EpochReport)] {
        let mut reports = std::mem::take(&mut self.reports);
        self.machine.run_epoch_into(&mut reports);

        // Detection phase: one inference per watched live process, in
        // deterministic (ascending pid) order — a binary classification,
        // or (confidence mode) a weighted-evidence verdict.
        self.batch.clear();
        self.verdict_batch.clear();
        self.progress.clear();
        for &(pid, ref report) in &reports {
            let Some(window) = self.windows.get_mut(&pid) else {
                continue; // unwatched process
            };
            // No liveness re-check: the machine only reports processes that
            // were alive at epoch start, and terminations happen in the
            // enactment phase below — every reported pid is still alive or
            // has just completed.
            window.push(report.hpc);
            if self.config.confidence {
                let confidence = self.detector.infer_confidence(pid.into(), window);
                self.verdict_batch
                    .push((pid.into(), Verdict::new(0, confidence)));
            } else {
                let inference = self.detector.infer(pid.into(), window);
                self.batch.push((pid.into(), inference));
            }
            self.progress.push((pid, report.progress, report.completed));
        }

        // Response phase: the whole epoch in one engine batch — handed
        // over synchronously, or published through the async ingest rings
        // and drained back (same responses in publish order; see
        // `ScenarioConfig::ingest`).
        let mut responses = std::mem::take(&mut self.responses);
        if self.config.confidence {
            if self.engine.verdict_ingest_enabled() {
                for &(pid, verdict) in &self.verdict_batch {
                    let _ = self.engine.ingest_verdict(pid, verdict);
                }
                responses = self.engine.drain_batch();
            } else {
                responses = self.engine.observe_verdict_batch(&self.verdict_batch);
            }
            // Fused responses come back grouped shard-by-shard; the
            // enactment cursor expects batch (ascending-pid) order.
            responses.sort_unstable_by_key(|r| r.pid.0);
        } else if self.engine.ingest_enabled() {
            for &(pid, inference) in &self.batch {
                let _ = self.engine.ingest(pid, inference);
            }
            responses = self.engine.drain_batch();
        } else {
            self.engine.observe_batch_into(&self.batch, &mut responses);
        }

        // Enactment phase: drive the machine levers per response. The
        // responses are an ordered subsequence of the batch (they only
        // fall short when an overflow policy sheds observations), so one
        // forward cursor pairs each response with its progress record.
        let mut cursor = 0usize;
        for resp in &responses {
            let Some(offset) = self.progress[cursor..]
                .iter()
                .position(|&(p, ..)| ProcessId::from(p) == resp.pid)
            else {
                continue;
            };
            let (pid, progress, completed) = self.progress[cursor + offset];
            cursor += offset + 1;
            // A cycle-end restore starts a fresh detection episode: the
            // detector's measurement history resets along with the
            // monitor's counters.
            if resp.action == Action::RestoreAndRecycle {
                if let Some(window) = self.windows.get_mut(&pid) {
                    *window = SampleWindow::new(self.config.window);
                }
            }
            match resp.action {
                Action::Terminate => {
                    self.machine.terminate(pid);
                    self.applied.remove(&pid);
                }
                Action::Throttle
                | Action::Recover
                | Action::Restore
                | Action::RestoreAndRecycle => {
                    let levers = (resp.resources.cpu, resp.resources.mem, resp.resources.fs);
                    if self.applied.get(&pid) != Some(&levers) {
                        match self.config.cpu_lever {
                            CpuLever::SchedulerWeight => {
                                self.machine.set_weight_scale(pid, resp.resources.cpu);
                            }
                            CpuLever::CgroupQuota => {
                                self.machine.set_cpu_quota(pid, resp.resources.cpu);
                            }
                        }
                        self.machine.set_memory_limit(pid, resp.resources.mem);
                        self.machine.set_fs_share(pid, resp.resources.fs);
                        self.applied.insert(pid, levers);
                    }
                }
                Action::None => {}
            }
            // `report.completed` is exactly `machine.is_completed(pid)` here:
            // earlier completions stop reporting, so only the completing
            // epoch reaches this branch.
            if completed {
                let _ = self.engine.complete(pid.into());
            }
            self.history.entry(pid).or_default().push(EpochRecord {
                progress,
                state: resp.state,
                cpu_share: resp.resources.cpu,
                threat: resp.threat.value(),
            });
        }
        self.responses = responses;
        self.reports = reports;
        &self.reports
    }

    /// Runs `n` epochs (through the allocation-free path).
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step_ref();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valkyrie_attacks::cryptominer::Cryptominer;
    use valkyrie_core::{AssessmentFn, Classification, ShareActuator};
    use valkyrie_detect::ScriptedDetector;
    use valkyrie_sim::machine::MachineConfig;
    use valkyrie_workloads::{roster, BenchmarkWorkload};

    fn engine_config(n_star: u64) -> EngineConfig {
        EngineConfig::builder()
            .measurements_required(n_star)
            .penalty(AssessmentFn::incremental())
            .compensation(AssessmentFn::incremental())
            .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
            .build()
            .unwrap()
    }

    #[test]
    fn attack_flagged_every_epoch_is_throttled_then_terminated() {
        let machine = Machine::new(MachineConfig::default());
        let detector = ScriptedDetector::constant(Classification::Malicious);
        let mut run = AugmentedRun::new(
            machine,
            engine_config(10),
            detector,
            ScenarioConfig::default(),
        );
        let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
        run.watch(pid);
        run.run(15);
        assert_eq!(run.state(pid), Some(ProcessState::Terminated));
        assert!(!run.machine().is_alive(pid));
        let hist = run.history(pid);
        // Progress decays while throttled, then stops at termination.
        assert!(hist[0].progress > 0.0);
        let last = hist.last().unwrap();
        assert_eq!(last.state, ProcessState::Terminated);
    }

    #[test]
    fn benign_process_with_clean_detector_is_untouched() {
        let machine = Machine::new(MachineConfig::default());
        let detector = ScriptedDetector::constant(Classification::Benign);
        let mut run = AugmentedRun::new(
            machine,
            engine_config(5),
            detector,
            ScenarioConfig::default(),
        );
        let mut spec = roster().remove(0);
        spec.epochs_to_complete = 8;
        let pid = run
            .machine_mut()
            .spawn(Box::new(BenchmarkWorkload::new(spec)));
        run.watch(pid);
        run.run(8);
        assert!(run.machine().is_completed(pid));
        let hist = run.history(pid);
        assert!(hist.iter().all(|r| r.cpu_share == 1.0));
    }

    #[test]
    fn false_positive_burst_recovers_fully() {
        use Classification::{Benign, Malicious};
        let machine = Machine::new(MachineConfig::default());
        let detector =
            ScriptedDetector::then_hold(vec![Malicious, Malicious, Benign, Benign, Benign]);
        let mut run = AugmentedRun::new(
            machine,
            engine_config(50),
            detector,
            ScenarioConfig::default(),
        );
        let mut spec = roster().remove(0);
        spec.epochs_to_complete = 1000;
        let pid = run
            .machine_mut()
            .spawn(Box::new(BenchmarkWorkload::new(spec)));
        run.watch(pid);
        run.run(10);
        let hist = run.history(pid);
        assert!(hist[1].cpu_share < 1.0, "throttled after FPs");
        assert_eq!(*hist.last().map(|r| &r.cpu_share).unwrap(), 1.0);
        assert_eq!(run.state(pid), Some(ProcessState::Normal));
    }

    #[test]
    fn cgroup_lever_also_throttles() {
        let machine = Machine::new(MachineConfig::default());
        let detector = ScriptedDetector::constant(Classification::Malicious);
        let mut run = AugmentedRun::new(
            machine,
            engine_config(100),
            detector,
            ScenarioConfig {
                cpu_lever: CpuLever::CgroupQuota,
                window: 16,
                ..ScenarioConfig::default()
            },
        );
        let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
        run.watch(pid);
        run.run(10);
        let hist = run.history(pid);
        assert!(hist.last().unwrap().progress < hist[0].progress / 2.0);
    }

    #[test]
    fn shard_count_and_execution_mode_do_not_change_scenario_histories() {
        let run_with = |shards: usize, execution: ExecutionMode| {
            let machine = Machine::new(MachineConfig::default());
            let detector = ScriptedDetector::constant(Classification::Malicious);
            let mut run = AugmentedRun::new(
                machine,
                engine_config(6),
                detector,
                ScenarioConfig {
                    shards,
                    execution,
                    ..ScenarioConfig::default()
                },
            );
            let attack = run.machine_mut().spawn(Box::new(Cryptominer::default()));
            run.watch(attack);
            let mut benign_pids = Vec::new();
            for mut spec in roster().into_iter().take(12) {
                spec.epochs_to_complete = 40;
                let pid = run
                    .machine_mut()
                    .spawn(Box::new(BenchmarkWorkload::new(spec)));
                run.watch(pid);
                benign_pids.push(pid);
            }
            run.run(12);
            let mut histories = vec![run.history(attack).to_vec()];
            for pid in benign_pids {
                histories.push(run.history(pid).to_vec());
            }
            histories
        };
        let single = run_with(1, ExecutionMode::ScopedSpawn);
        let sharded = run_with(4, ExecutionMode::ScopedSpawn);
        let pooled = run_with(4, ExecutionMode::Pool);
        assert_eq!(single, sharded);
        assert_eq!(single, pooled);
    }

    /// The async ingest path (publish every inference, then drain) leaves
    /// identical histories to the synchronous `observe_batch` path — in
    /// both execution modes.
    #[test]
    fn ingest_path_matches_the_synchronous_scenario() {
        let run_with = |ingest: Option<IngestOptions>, execution: ExecutionMode| {
            let machine = Machine::new(MachineConfig::default());
            let detector = ScriptedDetector::cycle(vec![
                Classification::Malicious,
                Classification::Malicious,
                Classification::Benign,
            ]);
            let mut run = AugmentedRun::new(
                machine,
                engine_config(8),
                detector,
                ScenarioConfig {
                    shards: 4,
                    execution,
                    ingest,
                    ..ScenarioConfig::default()
                },
            );
            let attack = run.machine_mut().spawn(Box::new(Cryptominer::default()));
            run.watch(attack);
            let mut pids = vec![attack];
            for mut spec in roster().into_iter().take(8) {
                spec.epochs_to_complete = 30;
                let pid = run
                    .machine_mut()
                    .spawn(Box::new(BenchmarkWorkload::new(spec)));
                run.watch(pid);
                pids.push(pid);
            }
            run.run(15);
            pids.iter()
                .map(|&pid| run.history(pid).to_vec())
                .collect::<Vec<_>>()
        };
        let sync = run_with(None, ExecutionMode::ScopedSpawn);
        let ingest = run_with(Some(IngestOptions::default()), ExecutionMode::ScopedSpawn);
        let ingest_pool = run_with(Some(IngestOptions::default()), ExecutionMode::Pool);
        assert_eq!(sync, ingest);
        assert_eq!(sync, ingest_pool);
    }

    /// The weighted-evidence plumbing degenerates exactly: confidence mode
    /// with the binary escalation ladder and unit weights leaves histories
    /// bit-for-bit identical to the classification path — synchronously
    /// and through the verdict ingest rings.
    #[test]
    fn confidence_path_matches_the_binary_scenario() {
        use valkyrie_core::{EscalationLadder, FusionConfig};
        let run_with = |confidence: bool, ingest: Option<IngestOptions>| {
            let machine = Machine::new(MachineConfig::default());
            let detector = ScriptedDetector::cycle(vec![
                Classification::Malicious,
                Classification::Malicious,
                Classification::Benign,
            ]);
            let mut config = EngineConfig::builder()
                .measurements_required(8)
                .penalty(AssessmentFn::incremental())
                .compensation(AssessmentFn::incremental())
                .actuator(ShareActuator::scheduler_weight(0.1, 0.01));
            if confidence {
                // Unit weights + binary ladder = the degenerate fusion
                // config that pins legacy behaviour.
                config = config.fusion(FusionConfig {
                    weights: Vec::new(),
                    default_weight: 1.0,
                    stale_decay: 1.0,
                    ladder: EscalationLadder::BINARY,
                });
            }
            let mut run = AugmentedRun::new(
                machine,
                config.build().unwrap(),
                detector,
                ScenarioConfig {
                    shards: 4,
                    ingest,
                    confidence,
                    ..ScenarioConfig::default()
                },
            );
            let attack = run.machine_mut().spawn(Box::new(Cryptominer::default()));
            run.watch(attack);
            let mut pids = vec![attack];
            for mut spec in roster().into_iter().take(8) {
                spec.epochs_to_complete = 30;
                let pid = run
                    .machine_mut()
                    .spawn(Box::new(BenchmarkWorkload::new(spec)));
                run.watch(pid);
                pids.push(pid);
            }
            run.run(15);
            pids.iter()
                .map(|&pid| run.history(pid).to_vec())
                .collect::<Vec<_>>()
        };
        let binary = run_with(false, None);
        let fused = run_with(true, None);
        let fused_ingest = run_with(true, Some(IngestOptions::default()));
        assert_eq!(binary, fused);
        assert_eq!(binary, fused_ingest);
    }
}
