//! Table II — progress of the hash-and-exfiltrate example attack under
//! varying availability of each system resource.

use crate::harness::TextTable;
use valkyrie_attacks::exfiltration::Exfiltration;
use valkyrie_sim::fs::SimFs;
use valkyrie_sim::machine::{report_for, Machine, MachineConfig};
use valkyrie_sim::Pid;

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Config {
    /// Epochs measured per configuration.
    pub epochs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            epochs: 100,
            seed: 0x7AB2,
        }
    }
}

impl Table2Config {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Self {
            epochs: 30,
            seed: 0x7AB2,
        }
    }
}

/// One measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Resource being throttled.
    pub resource: &'static str,
    /// Human-readable availability setting.
    pub setting: String,
    /// Measured progress in KB/s.
    pub kb_per_s: f64,
    /// Slowdown relative to the default row, in percent.
    pub slowdown_pct: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// All measured rows (default first per resource).
    pub rows: Vec<Table2Row>,
    /// Rendered table.
    pub report: String,
}

/// The victim corpus: ~100 files/s at 2257 B/file gives the paper's
/// 225.7 KB/s default. Built once per sweep (structure-of-arrays, no
/// per-file allocation) and snapshotted into each measurement's machine.
fn victim_fs() -> SimFs {
    SimFs::uniform("/data/f", 1_000_000, 2257)
}

fn machine(seed: u64, fs: &SimFs) -> Machine {
    let mut m = Machine::new(MachineConfig {
        seed,
        ..MachineConfig::default()
    });
    m.restore_fs(fs);
    m
}

fn measure<F: FnOnce(&mut Machine, Pid)>(config: &Table2Config, fs: &SimFs, setup: F) -> f64 {
    let mut m = machine(config.seed, fs);
    let pid = m.spawn(Box::new(Exfiltration::default()));
    setup(&mut m, pid);
    let mut bytes = 0.0;
    let mut reports = Vec::with_capacity(1);
    for _ in 0..config.epochs {
        m.run_epoch_into(&mut reports);
        bytes += report_for(&reports, pid).map_or(0.0, |r| r.progress);
    }
    bytes / 1000.0 / (config.epochs as f64 * 0.1)
}

/// Runs the Table II sweep.
pub fn run(config: &Table2Config) -> Table2Result {
    let fs = victim_fs();
    let measure = |setup: &dyn Fn(&mut Machine, Pid)| measure(config, &fs, setup);
    let default_rate = measure(&|_, _| {});
    let mut rows = Vec::new();
    let mut push = |resource, setting: String, rate: f64| {
        rows.push(Table2Row {
            resource,
            setting,
            kb_per_s: rate,
            slowdown_pct: (1.0 - rate / default_rate) * 100.0,
        });
    };

    push("CPU", "100% [default]".into(), default_rate);
    for quota in [0.9, 0.5, 0.01] {
        let r = measure(&|m, pid| m.set_cpu_quota(pid, quota));
        push("CPU", format!("{:.0}%", quota * 100.0), r);
    }

    push("Memory", "4.7M [default]".into(), default_rate);
    for (label, frac) in [("4.6M (93.6%)", 4.6 / 4.7), ("4.4M (89.4%)", 4.4 / 4.7)] {
        let r = measure(&|m, pid| m.set_memory_limit(pid, frac));
        push("Memory", label.into(), r);
    }

    push("Network", "1024G [default]".into(), default_rate);
    for (label, cap) in [("512G", 5.12e11), ("512M", 5.12e8), ("512K", 5.12e5)] {
        let r = measure(&|m, pid| m.set_network_cap(pid, cap));
        push("Network", label.into(), r);
    }

    push("Filesystem", "100 files/s [default]".into(), default_rate);
    for (label, share) in [("90 files/s", 0.9), ("50 files/s", 0.5), ("1 file/s", 0.01)] {
        let r = measure(&|m, pid| m.set_fs_share(pid, share));
        push("Filesystem", label.into(), r);
    }

    let mut t = TextTable::new(vec!["Resource", "Availability", "KB/s", "Slowdown"]);
    for row in &rows {
        t.row(vec![
            row.resource.to_string(),
            row.setting.clone(),
            format!("{:.2}", row.kb_per_s),
            format!("{:.2}%", row.slowdown_pct),
        ]);
    }
    let report = format!(
        "Table II — exfiltration-attack progress vs available resources\n(paper default: 225.7 KB/s)\n\n{}",
        t.render()
    );
    Table2Result { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_paper_shape() {
        let r = run(&Table2Config::quick());
        let find = |res: &str, set: &str| {
            r.rows
                .iter()
                .find(|row| row.resource == res && row.setting.starts_with(set))
                .unwrap_or_else(|| panic!("missing row {res}/{set}"))
        };
        // Default near 225.7 KB/s.
        let d = find("CPU", "100%");
        assert!(
            (d.kb_per_s - 225.7).abs() < 20.0,
            "default {:.1}",
            d.kb_per_s
        );
        // CPU is roughly proportional.
        assert!(find("CPU", "50%").slowdown_pct > 35.0);
        assert!(find("CPU", "1%").slowdown_pct > 98.0);
        // Memory collapses sharply.
        assert!(find("Memory", "4.6M").slowdown_pct > 99.0);
        assert!(find("Memory", "4.4M").slowdown_pct >= find("Memory", "4.6M").slowdown_pct);
        // Network shaping: ~11% at 512G, ~75% at 512M, ~100% at 512K.
        let n512g = find("Network", "512G").slowdown_pct;
        assert!((n512g - 11.4).abs() < 6.0, "512G slowdown {n512g}");
        let n512m = find("Network", "512M").slowdown_pct;
        assert!((n512m - 74.9).abs() < 10.0, "512M slowdown {n512m}");
        assert!(find("Network", "512K").slowdown_pct > 99.0);
        // Filesystem proportional.
        let f50 = find("Filesystem", "50 files/s").slowdown_pct;
        assert!((f50 - 49.6).abs() < 10.0, "50 files/s slowdown {f50}");
    }
}
