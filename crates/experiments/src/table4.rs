//! Table IV — mean false-positive slowdowns per evaluation platform.
//!
//! Each platform differs in scheduler tuning and, decisively, in how noisy
//! its performance counters are (the i7-7700 is the noisiest in the paper's
//! measurements, the i9-11900 the cleanest). The SPEC CPU2017 subset runs
//! behind Valkyrie on each platform; the geometric-mean slowdown is
//! reported.

use crate::fig5::{run_5a, Fig5Config};
use crate::harness::{geo_mean_pct, pct, TextTable};
use valkyrie_sim::Platform;
use valkyrie_workloads::Suite;

/// Table IV parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Config {
    /// Measurements per monitoring cycle.
    pub n_star: u64,
    /// Runtime divisor (test speed-up).
    pub runtime_divisor: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table4Config {
    fn default() -> Self {
        Self {
            n_star: 30,
            runtime_divisor: 1,
            seed: 0x7AB4,
        }
    }
}

impl Table4Config {
    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Self {
            runtime_divisor: 8,
            ..Self::default()
        }
    }
}

/// One platform's measured slowdown.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Platform name.
    pub platform: &'static str,
    /// OS / kernel string.
    pub os: &'static str,
    /// Geometric-mean slowdown over the SPEC-2017 subset, percent.
    pub geo_mean_pct: f64,
}

/// Structured result.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// Per-platform rows.
    pub rows: Vec<Table4Row>,
    /// Rendered table.
    pub report: String,
}

/// Runs Table IV across the three platforms.
pub fn run(config: &Table4Config) -> Table4Result {
    let mut rows = Vec::new();
    for platform in Platform::all() {
        let fig5 = Fig5Config {
            n_star: config.n_star,
            runtime_divisor: config.runtime_divisor,
            burst_scale: platform.detector_noise,
            platform: platform.clone(),
            multithreaded: false,
            seed: config.seed,
            ..Fig5Config::default()
        };
        let result = run_5a(&fig5);
        let spec2017: Vec<f64> = result
            .rows
            .iter()
            .filter(|r| r.suite == Suite::Spec2017Rate.label())
            .map(|r| r.slowdown_pct.max(0.0))
            .collect();
        rows.push(Table4Row {
            platform: platform.name,
            os: platform.os,
            geo_mean_pct: geo_mean_pct(&spec2017),
        });
    }

    let mut t = TextTable::new(vec!["Processor", "OS and kernel", "Slowdown (geo mean)"]);
    for r in &rows {
        t.row(vec![
            r.platform.to_string(),
            r.os.to_string(),
            pct(r.geo_mean_pct),
        ]);
    }
    let report = format!(
        "Table IV — mean SPEC-2017 FP slowdown per platform\n(paper: i7-3770 1%, i7-7700 2.2%, i9-11900 <1%)\n\n{}",
        t.render()
    );
    Table4Result { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noisier_platform_has_larger_slowdown() {
        let r = run(&Table4Config::quick());
        assert_eq!(r.rows.len(), 3);
        let by_name = |n: &str| {
            r.rows
                .iter()
                .find(|row| row.platform == n)
                .unwrap()
                .geo_mean_pct
        };
        let i7_7700 = by_name("i7-7700");
        let i9 = by_name("i9-11900");
        assert!(
            i7_7700 >= i9,
            "i7-7700 ({i7_7700}%) should be slower than i9-11900 ({i9}%)"
        );
    }
}
