//! Process-wide cache of trained artefacts keyed by their training inputs.
//!
//! Several experiments retrain the same model from the same deterministic
//! inputs: every Fig. 1 invocation rebuilds its corpus and four detector
//! models, every Fig. 5 benchmark refits the statistical detector from the
//! same benign baseline, and sweeps (noise knobs, benches, test suites)
//! repeat those calls many times over. Training is deterministic — the
//! model is a pure function of its parameters — so a sweep point that
//! shares a training configuration can share the trained model.
//!
//! [`get_or_build`] memoises any `Send + Sync` artefact under a
//! [`CacheKey`] that encodes the *complete* set of parameters the build
//! depends on (floats via [`f64::to_bits`] so distinct NaN payloads and
//! signed zeros stay distinct). Entries live for the process lifetime; the
//! handful of distinct configurations exercised by the experiment suite
//! keeps the cache small.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A cache key: a tag naming the artefact plus every parameter that
/// determines it.
///
/// # Examples
///
/// ```
/// use valkyrie_experiments::cache::CacheKey;
/// let a = CacheKey::new("fig5-detector").with(40).with_f64(4.0);
/// let b = CacheKey::new("fig5-detector").with(40).with_f64(4.0);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    tag: &'static str,
    params: Vec<u64>,
}

impl CacheKey {
    /// A key for the artefact named `tag` with no parameters yet.
    pub fn new(tag: &'static str) -> Self {
        Self {
            tag,
            params: Vec::new(),
        }
    }

    /// Appends an integer parameter.
    #[must_use]
    pub fn with(mut self, param: u64) -> Self {
        self.params.push(param);
        self
    }

    /// Appends a float parameter (compared bit-exactly).
    #[must_use]
    pub fn with_f64(mut self, param: f64) -> Self {
        self.params.push(param.to_bits());
        self
    }
}

type Store = Mutex<HashMap<CacheKey, Arc<dyn Any + Send + Sync>>>;

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(Store::default)
}

/// Returns the artefact cached under `key`, building (and caching) it with
/// `build` on the first request.
///
/// The lock is not held while `build` runs, so a slow training job never
/// blocks unrelated lookups; if two threads race on the same fresh key the
/// first insert wins and both observe that value (builds are deterministic,
/// so the race is invisible).
///
/// # Panics
///
/// Panics if `key` was previously used to cache a different concrete type.
pub fn get_or_build<T, F>(key: CacheKey, build: F) -> Arc<T>
where
    T: Any + Send + Sync,
    F: FnOnce() -> T,
{
    if let Some(hit) = store().lock().expect("cache lock").get(&key) {
        return Arc::clone(hit)
            .downcast::<T>()
            .expect("cache key reused with a different artefact type");
    }
    let built: Arc<dyn Any + Send + Sync> = Arc::new(build());
    let mut guard = store().lock().expect("cache lock");
    Arc::clone(guard.entry(key).or_insert(built))
        .downcast::<T>()
        .expect("cache key reused with a different artefact type")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static BUILDS: AtomicUsize = AtomicUsize::new(0);

    #[test]
    fn second_lookup_reuses_the_first_build() {
        let key = || CacheKey::new("test-artefact").with(1).with_f64(0.5);
        let a = get_or_build(key(), || {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            vec![1.0, 2.0]
        });
        let b = get_or_build(key(), || {
            BUILDS.fetch_add(1, Ordering::SeqCst);
            vec![1.0, 2.0]
        });
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_parameters_are_distinct_entries() {
        let a = get_or_build(CacheKey::new("test-param").with(1), || 1u64);
        let b = get_or_build(CacheKey::new("test-param").with(2), || 2u64);
        assert_eq!((*a, *b), (1, 2));
    }

    #[test]
    fn float_parameters_compare_bit_exactly() {
        assert_ne!(
            CacheKey::new("t").with_f64(0.0),
            CacheKey::new("t").with_f64(-0.0)
        );
    }
}
