//! Fig. 1 — detection efficacy (F1, FPR) versus number of measurements for
//! four detector families trained on the ransomware-vs-benign HPC corpus.

use crate::cache::{get_or_build, CacheKey};
use crate::harness::{fmt, TextTable};
use std::sync::Arc;
use valkyrie_core::{EfficacyCurve, EfficacyPoint, EfficacySpec};
use valkyrie_detect::efficacy::{measure_efficacy_votes, EfficacyGrid};
use valkyrie_ml::dataset::{generate_corpus, CorpusConfig};
use valkyrie_ml::{
    BinaryClassifier, ConfusionMatrix, Gbdt, GbdtConfig, LinearSvm, Mlp, MlpConfig, MlpScratch,
    SequenceDataset, Standardizer, SvmConfig,
};

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Config {
    /// Ransomware variants in the corpus (paper: 67).
    pub ransomware: usize,
    /// Benign programs in the corpus (paper: SPEC-2006; we use 77).
    pub benign: usize,
    /// Measurements per trace.
    pub trace_len: usize,
    /// Largest measurement count on the x-axis (paper: 75).
    pub grid_max: u32,
    /// Cap on per-measurement training samples (bounds GBDT cost).
    pub train_cap: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self {
            ransomware: 67,
            benign: 77,
            trace_len: 80,
            grid_max: 75,
            train_cap: 4000,
            seed: 0xF161,
        }
    }
}

impl Fig1Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Self {
            ransomware: 12,
            benign: 14,
            trace_len: 30,
            grid_max: 25,
            train_cap: 800,
            seed: 0xF161,
        }
    }
}

/// The four measured curves plus the rendered report.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Small ANN (1 hidden layer × 4) curve.
    pub small_ann: EfficacyCurve,
    /// Large ANN (2 hidden layers × 8) curve.
    pub large_ann: EfficacyCurve,
    /// Linear SVM (majority vote) curve.
    pub svm: EfficacyCurve,
    /// Gradient-boosted trees (majority vote) curve.
    pub xgboost: EfficacyCurve,
    /// Human-readable report.
    pub report: String,
}

fn pooled_mean(prefix: &[Vec<f64>]) -> Vec<f64> {
    let dim = prefix[0].len();
    let mut mean = vec![0.0; dim];
    for x in prefix {
        for (m, v) in mean.iter_mut().zip(x) {
            *m += v / prefix.len() as f64;
        }
    }
    mean
}

/// Everything Fig. 1 trains from one corpus configuration.
///
/// Cached process-wide (see [`crate::cache`]): sweep points, benches and
/// tests that share `{ransomware, benign, trace_len, train_cap, seed}` reuse
/// the corpus split and all four trained models — `grid_max` only selects
/// where the (cheap) curves are evaluated, so it is deliberately *not* part
/// of the key.
#[derive(Debug, Clone)]
pub(crate) struct TrainedModels {
    pub(crate) test: SequenceDataset,
    pub(crate) standardizer: Standardizer,
    pub(crate) svm: LinearSvm,
    pub(crate) xgb: Gbdt,
    pub(crate) small: Mlp,
    pub(crate) large: Mlp,
}

pub(crate) fn trained_models(config: &Fig1Config) -> Arc<TrainedModels> {
    let key = CacheKey::new("fig1-models")
        .with(config.ransomware as u64)
        .with(config.benign as u64)
        .with(config.trace_len as u64)
        .with(config.train_cap as u64)
        .with(config.seed);
    get_or_build(key, || {
        let corpus = generate_corpus(&CorpusConfig {
            ransomware_variants: config.ransomware,
            benign_programs: config.benign,
            trace_len: config.trace_len,
            seed: config.seed,
        });
        let (train, test) = corpus.split(0.7);

        // Standardise on the training measurements.
        let flat_train = train.flatten();
        let standardizer = Standardizer::fit(&flat_train.features);

        // Per-measurement models (SVM / XGBoost style).
        let (xs, ys) = capped(
            standardizer.transform_all(&flat_train.features),
            flat_train.labels.clone(),
            config.train_cap,
        );
        let svm = LinearSvm::train(&SvmConfig::default(), &xs, &ys);
        let xgb = Gbdt::train(&GbdtConfig::default(), &xs, &ys);

        // Pooled-feature ANNs: train on prefix means of several lengths so
        // the models see both noisy short-horizon and clean long-horizon
        // inputs.
        let (px, py) = pooled_training_set(&train, &standardizer, config.trace_len);
        let small = Mlp::train(
            &MlpConfig::small_ann(px[0].len()).with_epochs(150),
            &px,
            &py,
        );
        let large = Mlp::train(
            &MlpConfig::large_ann(px[0].len()).with_epochs(150),
            &px,
            &py,
        );
        TrainedModels {
            test,
            standardizer,
            svm,
            xgb,
            small,
            large,
        }
    })
}

/// Majority-vote curve via prefix vote counts: each test measurement is
/// scored once through the model's batched kernel.
fn vote_curve<C: BinaryClassifier>(
    model: &C,
    models: &TrainedModels,
    grid: &EfficacyGrid,
) -> EfficacyCurve {
    let mut scores = Vec::new();
    measure_efficacy_votes(&models.test, grid, |seq| {
        let xs = models.standardizer.transform_all(seq);
        model.score_batch_into(&xs, &mut scores);
        scores.iter().map(|&s| s >= 0.5).collect()
    })
    .expect("non-empty grid")
}

/// Pooled-ANN curve: per grid point, all test prefixes are pooled and then
/// classified as one batched forward pass. The pooled mean itself is still
/// recomputed per prefix length — its `Σ(v / n)` accumulation order is what
/// the golden pins fix — but the MLP inference runs through the blocked
/// `A · Wᵀ` kernel instead of one `predict_proba` per trace.
fn pooled_curve(model: &Mlp, models: &TrainedModels, grid: &EfficacyGrid) -> EfficacyCurve {
    let mut scratch = MlpScratch::default();
    let mut probs = Vec::new();
    let mut points = Vec::with_capacity(grid.points().len());
    for &n in grid.points() {
        let xs: Vec<Vec<f64>> = models
            .test
            .sequences
            .iter()
            .map(|seq| {
                let take = (n as usize).min(seq.len());
                models.standardizer.transform(&pooled_mean(&seq[..take]))
            })
            .collect();
        model.predict_batch_with(&xs, &mut scratch, &mut probs);
        let mut cm = ConfusionMatrix::default();
        for (p, &label) in probs.iter().zip(&models.test.labels) {
            cm.record(label == 1.0, *p >= 0.5);
        }
        points.push(EfficacyPoint {
            measurements: n,
            f1: cm.f1(),
            fpr: cm.fpr(),
        });
    }
    EfficacyCurve::new(points).expect("non-empty grid")
}

/// Runs the Fig. 1 experiment.
pub fn run(config: &Fig1Config) -> Fig1Result {
    let models = trained_models(config);
    let grid = EfficacyGrid::new((1..=config.grid_max).step_by(2).collect());
    let small_ann = pooled_curve(&models.small, &models, &grid);
    let large_ann = pooled_curve(&models.large, &models, &grid);
    let svm_curve = vote_curve(&models.svm, &models, &grid);
    let xgb_curve = vote_curve(&models.xgb, &models, &grid);

    let report = render(config, &small_ann, &large_ann, &svm_curve, &xgb_curve);
    Fig1Result {
        small_ann,
        large_ann,
        svm: svm_curve,
        xgboost: xgb_curve,
        report,
    }
}

fn capped(mut xs: Vec<Vec<f64>>, mut ys: Vec<f64>, cap: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    if xs.len() > cap {
        // Deterministic stride subsampling keeps class balance.
        let stride = xs.len().div_ceil(cap);
        xs = xs.into_iter().step_by(stride).collect();
        ys = ys.into_iter().step_by(stride).collect();
    }
    (xs, ys)
}

fn pooled_training_set(
    train: &SequenceDataset,
    std: &Standardizer,
    trace_len: usize,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let lens = [1usize, 3, 5, 10, 20, 40, trace_len];
    for (seq, &label) in train.sequences.iter().zip(&train.labels) {
        for &len in &lens {
            let take = len.min(seq.len());
            xs.push(std.transform(&pooled_mean(&seq[..take])));
            ys.push(label);
        }
    }
    (xs, ys)
}

fn render(
    config: &Fig1Config,
    small: &EfficacyCurve,
    large: &EfficacyCurve,
    svm: &EfficacyCurve,
    xgb: &EfficacyCurve,
) -> String {
    let mut t = TextTable::new(vec![
        "measurements",
        "F1 smallANN",
        "F1 largeANN",
        "F1 SVM",
        "F1 XGBoost",
        "FPR smallANN",
        "FPR largeANN",
        "FPR SVM",
        "FPR XGBoost",
    ]);
    for (i, p) in small.points().iter().enumerate() {
        t.row(vec![
            p.measurements.to_string(),
            fmt(p.f1, 3),
            fmt(large.points()[i].f1, 3),
            fmt(svm.points()[i].f1, 3),
            fmt(xgb.points()[i].f1, 3),
            fmt(p.fpr, 3),
            fmt(large.points()[i].fpr, 3),
            fmt(svm.points()[i].fpr, 3),
            fmt(xgb.points()[i].fpr, 3),
        ]);
    }
    let mut out = String::from("Fig. 1 — detection efficacy vs number of measurements\n");
    out.push_str(&format!(
        "corpus: {} ransomware + {} benign traces of {} measurements\n\n",
        config.ransomware, config.benign, config.trace_len
    ));
    out.push_str(&t.render());
    // The paper's planner narrative.
    if let Ok(n) = xgb.measurements_required(&EfficacySpec::f1_at_least(0.9)) {
        out.push_str(&format!(
            "\nN* for XGBoost F1 >= 0.9: {n} measurements ({:.1} s at one per 100 ms; paper: 23 / 2.3 s)\n",
            n as f64 / 10.0
        ));
    }
    if let Ok(n) = xgb.measurements_required(&EfficacySpec::fpr_at_most(0.10)) {
        out.push_str(&format!(
            "N* for XGBoost FPR <= 10%: {n} measurements ({:.1} s; paper: ~50 / 5 s)\n",
            n as f64 / 10.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig1_produces_improving_curves() {
        let r = run(&Fig1Config::quick());
        for curve in [&r.small_ann, &r.large_ann, &r.svm, &r.xgboost] {
            let first = curve.points().first().unwrap();
            let best_late = curve.f1_at(curve.points().last().unwrap().measurements);
            assert!(
                best_late.unwrap() >= first.f1 - 1e-9,
                "monotone envelope must not degrade"
            );
        }
        assert!(r.report.contains("Fig. 1"));
    }

    #[test]
    fn xgboost_reaches_high_f1_with_enough_measurements() {
        let r = run(&Fig1Config::quick());
        let f1 = r.xgboost.f1_at(25).unwrap();
        assert!(f1 > 0.8, "XGBoost F1 {f1} at 25 measurements");
    }
}
