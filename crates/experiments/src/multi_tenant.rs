//! The multi-tenant machine: several concurrent attacks hiding in a fleet
//! of thousands of benign service processes (ours; beyond the paper).
//!
//! The paper evaluates one attack per machine. A production host is
//! multi-tenant: thousands of benign services ([`valkyrie_workloads::fleet`])
//! share the machine with a handful of staggered time-progressive attacks.
//! This experiment drives the whole fleet through the scaling tier — one
//! [`ShardedEngine::tick`] per epoch, thousands of observations per batch —
//! and measures both the security outcome (attacks terminated, benign
//! processes spared) and the response tier's **throughput** in
//! observations per second.
//!
//! As in the quantified Table I ([`crate::responses`]), terminable-state
//! verdicts are drawn at the detector's `N*`-measurement efficacy
//! (`verdict_tpr`/`verdict_fpr`), while per-epoch inferences use the raw
//! per-epoch rates — that is the entire point of waiting for `N*`.
//!
//! # Async ingest (`--async-ingest`)
//!
//! With [`MultiTenantConfig::ingest`] set, the detector tier is **slow and
//! jittery**: each epoch's verdicts are published into the engine's
//! bounded per-shard rings ([`valkyrie_core::ingest`]) only
//! `delay + jitter(pid, epoch)` epochs after the measurement, while the
//! epoch driver calls [`ShardedEngine::drain_tick`] every epoch
//! regardless. The driver completes all `epochs` ticks on schedule — the
//! detectors' latency costs detection *lag* (attacks die a few epochs
//! later), never response-tier *stall*. Publication is deterministic
//! (jitter is a pure hash), so the security outcome is pinned by
//! `tests/golden_outputs.rs` alongside the synchronous one.

use crate::harness::{pct, TextTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use valkyrie_core::hash::jitter64;
use valkyrie_core::{
    Action, AssessmentFn, Classification, EngineConfig, EscalationLadder, ExecutionMode,
    FusionConfig, FusionStats, IngestDefense, IngestStats, OverflowPolicy, ProcessId, ProcessState,
    ShardedEngine, ShareActuator, Verdict,
};
use valkyrie_workloads::{fleet_roster, NoiseFlood};

/// Multi-tenant machine shape and detector quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTenantConfig {
    /// Benign service processes on the machine (the fleet).
    pub benign_procs: usize,
    /// Concurrent time-progressive attacks, staggered over the first half
    /// of the horizon.
    pub attacks: usize,
    /// Observation horizon, in epochs.
    pub epochs: u64,
    /// Valkyrie's measurement requirement.
    pub n_star: u64,
    /// Engine shard count.
    pub shards: usize,
    /// Per-epoch probability that an attack is flagged.
    pub tpr: f64,
    /// Verdict-time true-positive rate (efficacy after `N*` measurements).
    pub verdict_tpr: f64,
    /// Verdict-time false-positive rate (efficacy after `N*` measurements).
    pub verdict_fpr: f64,
    /// RNG seed for the detection streams.
    pub seed: u64,
    /// How the engine fans each tick over its shards: per-tick scoped
    /// threads, or the persistent worker pool (the steady-state winner for
    /// a machine that ticks every epoch at fleet scale). The security
    /// outcome is identical either way.
    pub execution: ExecutionMode,
    /// `Some` runs the detector tier asynchronously (slow, jittery
    /// verdict publication through the ingest rings); `None` keeps the
    /// synchronous batch-per-tick driver. See the [module docs](self).
    pub ingest: Option<AsyncIngest>,
    /// `Some` replaces the single binary detector with a **fused
    /// heterogeneous pair**: the fast-weak per-epoch stream (detector 0,
    /// raw `tpr`/`burst_prob` rates, no verdict-grade sharpening) plus a
    /// slow-strong member (detector 1) publishing every
    /// [`FusionTier::slow_cadence`] epochs. Each member publishes
    /// [`Verdict`]s over its own [`IngestPublisher`] and the engine fuses
    /// them under the graduated escalation ladder. Mutually exclusive with
    /// `ingest`.
    ///
    /// [`IngestPublisher`]: valkyrie_core::IngestPublisher
    pub fusion: Option<FusionTier>,
    /// `Some` runs a [`NoiseFlood`] against the async ingest rings while
    /// the staggered attacks run underneath: a second publisher handle
    /// spams benign-looking decoy observations at exactly the shards that
    /// own the attack pids, forcing overflow evictions that mask the real
    /// verdicts. Requires `ingest`; mutually exclusive with `fusion`. The
    /// [`FloodTier::defense`] field decides whether the rings fight back.
    pub flood: Option<FloodTier>,
}

/// The async detector tier's shape: how late verdicts are published, and
/// how the bounded rings behave ([`valkyrie_core::ingest`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncIngest {
    /// Epochs between a measurement and its verdict's publication (the
    /// detector ensemble's base inference latency).
    pub delay: u64,
    /// Up to this many extra epochs of deterministic per-verdict jitter.
    pub jitter: u64,
    /// Ingest ring capacity, in observations per shard.
    pub capacity: usize,
    /// What a full ring does with the next verdict.
    pub policy: OverflowPolicy,
}

impl Default for AsyncIngest {
    fn default() -> Self {
        Self {
            delay: 3,
            jitter: 2,
            capacity: 1024,
            // Cyclic monitoring consumes one verdict per process per
            // epoch, so merging to the newest is the faithful overload
            // behaviour.
            policy: OverflowPolicy::Coalesce,
        }
    }
}

/// The fused heterogeneous detector pair: a fast-weak member answering
/// every epoch and a slow-strong member answering every `slow_cadence`
/// epochs (occasionally skipping a window entirely), combined by the
/// engine's weighted-evidence fusion under the graduated escalation
/// ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionTier {
    /// Fusion weight of the fast-weak per-epoch member (detector 0).
    pub fast_weight: f64,
    /// Fusion weight of the slow-strong member (detector 1).
    pub slow_weight: f64,
    /// Epochs between the slow member's publications.
    pub slow_cadence: u32,
    /// Per-window probability that the slow member flags an attack.
    pub slow_tpr: f64,
    /// Per-window probability that the slow member flags a benign process.
    pub slow_fpr: f64,
    /// Probability the slow member skips a publication window outright
    /// (model overload / preemption). Its held verdict then outlives its
    /// cadence and is staleness-decayed by the fusion table.
    pub slow_dropout: f64,
    /// Per-epoch decay applied to a member's weight once its verdict is
    /// older than its cadence ([`valkyrie_core::stale_weight`]).
    pub stale_decay: f64,
    /// Verdict-ingest ring capacity, in verdicts per shard.
    pub capacity: usize,
}

impl Default for FusionTier {
    fn default() -> Self {
        Self {
            fast_weight: 1.0,
            slow_weight: 2.0,
            slow_cadence: 4,
            slow_tpr: 0.95,
            slow_fpr: 0.02,
            slow_dropout: 0.15,
            stale_decay: 0.5,
            capacity: 4096,
        }
    }
}

/// The noise-floor DoS tier: a [`NoiseFlood`] aimed at the attack pids'
/// shards, published through its own [`IngestPublisher`] clone so the
/// fair-queueing defense has a tenant to charge.
///
/// [`IngestPublisher`]: valkyrie_core::IngestPublisher
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodTier {
    /// Decoys per target shard per epoch, steady state. Suppression is
    /// sharp around the ring capacity: once the post-verdict decoy volume
    /// reaches it, every real verdict in the shard is evicted.
    pub rate: u32,
    /// Rate multiplier on burst epochs.
    pub burst: u32,
    /// Every `burst_period`-th epoch bursts (`0` disables bursts).
    pub burst_period: u64,
    /// Decoy pid population rotation period ([`NoiseFlood::with_churn`]).
    pub churn: u64,
    /// The rings' overload defense ([`valkyrie_core::ingest`]); default
    /// off, [`IngestDefense::full`] for the hardened run.
    pub defense: IngestDefense,
}

impl Default for FloodTier {
    fn default() -> Self {
        Self {
            rate: 1_152,
            burst: 2,
            burst_period: 16,
            churn: 16,
            defense: IngestDefense::default(),
        }
    }
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        Self {
            benign_procs: 4_000,
            attacks: 6,
            epochs: 300,
            n_star: 30,
            shards: 8,
            tpr: 0.90,
            verdict_tpr: 0.995,
            verdict_fpr: 0.005,
            seed: 0x007E_4A47,
            execution: ExecutionMode::ScopedSpawn,
            ingest: None,
            fusion: None,
            flood: None,
        }
    }
}

impl MultiTenantConfig {
    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            benign_procs: 300,
            attacks: 3,
            epochs: 80,
            n_star: 10,
            shards: 4,
            ..Self::default()
        }
    }

    /// [`Self::quick`] with the async detector tier (3-epoch latency,
    /// up to 2 epochs of jitter).
    pub fn quick_async() -> Self {
        Self {
            ingest: Some(AsyncIngest::default()),
            ..Self::quick()
        }
    }

    /// [`Self::quick`] with a fast-**weak** per-epoch member (70% TPR)
    /// fused with the default slow-strong member.
    pub fn quick_fused() -> Self {
        Self {
            tpr: 0.70,
            fusion: Some(FusionTier::default()),
            ..Self::quick()
        }
    }

    /// [`Self::quick_async`] under a noise flood: small `DropOldest`
    /// rings (128/shard against ~75 legit verdicts per shard per epoch)
    /// and a 160/shard/epoch decoy stream at the attack pids' shards —
    /// enough to evict every real verdict there once the decoys land. The
    /// `defense` decides whether the rings fight back.
    pub fn quick_flood(defense: IngestDefense) -> Self {
        Self {
            ingest: Some(AsyncIngest {
                capacity: 128,
                policy: OverflowPolicy::DropOldest,
                ..AsyncIngest::default()
            }),
            flood: Some(FloodTier {
                rate: 160,
                defense,
                ..FloodTier::default()
            }),
            ..Self::quick()
        }
    }
}

/// Outcome of one multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantResult {
    /// Attacks terminated (out of `config.attacks`).
    pub attacks_terminated: usize,
    /// Mean epochs from an attack's arrival to its termination.
    pub mean_epochs_to_kill: f64,
    /// Benign processes wrongfully terminated, % of the fleet.
    pub benign_killed_pct: f64,
    /// Mean slowdown of surviving benign work, % (lost CPU share).
    pub benign_slowdown_pct: f64,
    /// Benign processes that ran to completion within the horizon.
    pub benign_completed: usize,
    /// Largest number of processes tracked at once.
    pub peak_tracked: usize,
    /// Processes evicted by the epoch driver's purge.
    pub purged: u64,
    /// Processes still tracked (live) after the final tick.
    pub final_tracked_live: usize,
    /// Total observations fed through the engine.
    pub observations: u64,
    /// Engine-only throughput, observations per second.
    pub observations_per_sec: f64,
    /// Ingest-tier counters (async runs only).
    pub ingest: Option<IngestStats>,
    /// Decoy observations the flood tier published (flood runs only).
    pub flood_decoys: u64,
    /// Fusion-tier counters: per-detector verdicts absorbed, staleness
    /// decays and escalation-ladder transitions. All zero except
    /// `escalations` when the run is binary (no [`FusionTier`]).
    pub fusion_stats: FusionStats,
    /// Rendered report.
    pub report: String,
}

/// The deterministic per-verdict publication jitter: a pure hash of the
/// pid and the epoch the measurement was taken in (the same
/// [`jitter64`] model `valkyrie_detect::LatencyModel` uses).
fn publish_jitter(pid: ProcessId, epoch: u64, jitter: u64) -> u64 {
    jitter64(pid.0, epoch, jitter)
}

struct BenignProc {
    pid: ProcessId,
    /// Epochs of useful work left (at full speed).
    lifetime: u64,
    burst_prob: f64,
    cpu_share_sum: f64,
    epochs_run: u64,
    killed: bool,
    completed: bool,
    /// Fig. 3 state after the last tick, mirrored from the response so the
    /// driver never pays a per-pid `engine.state()` query — in pool mode
    /// each of those is a blocking channel round-trip, and a 4k-process
    /// fleet would serialise thousands of them per epoch.
    state: Option<ProcessState>,
}

struct AttackProc {
    pid: ProcessId,
    arrival: u64,
    killed_at: Option<u64>,
    /// Mirrored response state (see [`BenignProc::state`]).
    state: Option<ProcessState>,
}

/// Runs the multi-tenant machine.
pub fn run(cfg: &MultiTenantConfig) -> MultiTenantResult {
    assert!(
        cfg.ingest.is_none() || cfg.fusion.is_none(),
        "the async and fused detector tiers are mutually exclusive"
    );
    assert!(
        cfg.flood.is_none() || (cfg.ingest.is_some() && cfg.fusion.is_none()),
        "the flood tier rides on the async ingest rings"
    );
    let mut builder = EngineConfig::builder()
        .measurements_required(cfg.n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(true);
    if let Some(ft) = cfg.fusion {
        builder = builder.fusion(FusionConfig {
            weights: vec![ft.fast_weight, ft.slow_weight],
            default_weight: 1.0,
            stale_decay: ft.stale_decay,
            ladder: EscalationLadder::graduated(),
        });
    }
    let config = builder.build().expect("valid multi-tenant config");
    let mut engine = ShardedEngine::with_mode(
        config,
        cfg.shards.max(1),
        cfg.benign_procs + cfg.attacks,
        cfg.execution,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut benign: Vec<BenignProc> = fleet_roster(cfg.benign_procs)
        .into_iter()
        .enumerate()
        .map(|(i, spec)| BenignProc {
            pid: ProcessId(i as u64),
            lifetime: spec.epochs_to_complete,
            burst_prob: spec.burst_prob,
            cpu_share_sum: 0.0,
            epochs_run: 0,
            killed: false,
            completed: false,
            state: None,
        })
        .collect();
    // Attacks arrive staggered across the first half of the horizon.
    let mut attacks: Vec<AttackProc> = (0..cfg.attacks)
        .map(|j| AttackProc {
            pid: ProcessId((cfg.benign_procs + j) as u64),
            arrival: (j as u64 * cfg.epochs / 2) / cfg.attacks.max(1) as u64,
            killed_at: None,
            state: None,
        })
        .collect();

    let mut batch: Vec<(ProcessId, Classification)> =
        Vec::with_capacity(benign.len() + attacks.len());

    // The async detector tier: verdicts computed at epoch `e` are
    // published at `e + delay + jitter(pid, e)` (clamped to stay in
    // per-process order). The ring of pending publications is indexed by
    // target epoch modulo its length — one slot per possible lag.
    let publisher = cfg.ingest.map(|ai| {
        let defense = cfg.flood.map(|f| f.defense).unwrap_or_default();
        engine.enable_ingest_defended(ai.capacity, ai.policy, defense)
    });
    // The flood tier: a deterministic decoy stream aimed at exactly the
    // shards that own the attack pids, published through its own handle
    // (the defense's per-publisher accounting needs a tenant to charge).
    let flood = cfg.flood.map(|f| {
        let attack_pids: Vec<ProcessId> = attacks.iter().map(|a| a.pid).collect();
        NoiseFlood::masking(cfg.seed ^ 0xF100D, cfg.shards.max(1), &attack_pids)
            .with_rate(f.rate)
            .with_burst(f.burst, f.burst_period)
            .with_churn(f.churn)
    });
    let flood_pub = match (&publisher, &flood) {
        (Some(publisher), Some(_)) => Some(publisher.clone()),
        _ => None,
    };
    let mut decoys: Vec<(ProcessId, Classification)> = Vec::new();
    let mut flood_decoys = 0u64;
    // The fused tier: each member publishes over its **own** publisher
    // handle into the shared verdict rings, at its own cadence.
    let fusion_pubs = cfg.fusion.map(|ft| {
        let fast = engine.enable_verdict_ingest(ft.capacity, OverflowPolicy::Block);
        let slow = engine
            .verdict_publisher()
            .expect("verdict ingest just enabled");
        (fast, slow)
    });
    let mut pending: Vec<Vec<ProcessId>> = cfg
        .ingest
        .map(|ai| vec![Vec::new(); (ai.delay + ai.jitter + 1) as usize])
        .unwrap_or_default();
    // Per-process floor on the next publication epoch (in-order delivery).
    let mut next_pub: Vec<u64> = vec![0; benign.len() + attacks.len()];

    let mut observations = 0u64;
    let mut peak_tracked = 0usize;
    let mut engine_time = std::time::Duration::ZERO;

    let mut measured: Vec<ProcessId> = Vec::with_capacity(benign.len() + attacks.len());

    for epoch in 0..cfg.epochs {
        // The measurement phase: which processes the detector sampled this
        // epoch (liveness is re-checked at verdict time for the async
        // tier, where the two moments differ).
        measured.clear();
        for proc in benign.iter() {
            if !proc.killed && !proc.completed {
                measured.push(proc.pid);
            }
        }
        for attack in attacks.iter() {
            if attack.killed_at.is_none() && epoch >= attack.arrival {
                measured.push(attack.pid);
            }
        }

        // The detector finalises a verdict with its calibrated knowledge:
        // per-epoch rates normally, verdict-grade rates once the monitor
        // has its N* measurements (the Terminable state mirrored from the
        // latest response).
        let verdict =
            |pid: ProcessId, benign: &[BenignProc], attacks: &[AttackProc], rng: &mut StdRng| {
                let idx = pid.0 as usize;
                let flag_prob = if idx < benign.len() {
                    if benign[idx].state == Some(ProcessState::Terminable) {
                        cfg.verdict_fpr
                    } else {
                        benign[idx].burst_prob
                    }
                } else if attacks[idx - benign.len()].state == Some(ProcessState::Terminable) {
                    cfg.verdict_tpr
                } else {
                    cfg.tpr
                };
                if rng.gen::<f64>() < flag_prob {
                    Classification::Malicious
                } else {
                    Classification::Benign
                }
            };

        let purged_before = engine.purged_total();
        let t0 = Instant::now();
        let responses = if let (Some((fast_pub, slow_pub)), Some(ft)) = (&fusion_pubs, cfg.fusion) {
            // The fast-weak member answers every epoch with its raw rates
            // (no verdict-grade sharpening — accumulating efficacy is the
            // slow member's job); the slow-strong member answers on its own
            // cadence and occasionally drops a window, leaving its held
            // verdict to staleness-decay inside the fusion table.
            let slow_window = epoch.is_multiple_of(u64::from(ft.slow_cadence.max(1)));
            for &pid in &measured {
                let idx = pid.0 as usize;
                let fast_prob = if idx < benign.len() {
                    benign[idx].burst_prob
                } else {
                    cfg.tpr
                };
                let fast_conf = if rng.gen::<f64>() < fast_prob {
                    1.0
                } else {
                    0.0
                };
                fast_pub.publish(pid, Verdict::new(0, fast_conf));
                if slow_window && rng.gen::<f64>() >= ft.slow_dropout {
                    let slow_prob = if idx < benign.len() {
                        ft.slow_fpr
                    } else {
                        ft.slow_tpr
                    };
                    let slow_conf = if rng.gen::<f64>() < slow_prob {
                        1.0
                    } else {
                        0.0
                    };
                    slow_pub.publish(
                        pid,
                        Verdict::new(1, slow_conf).with_cadence(ft.slow_cadence),
                    );
                }
            }
            engine.drain_tick()
        } else {
            match (&publisher, cfg.ingest) {
                (Some(publisher), Some(ai)) => {
                    // Schedule this epoch's measurements for late, jittery
                    // verdict publication...
                    for &pid in &measured {
                        let idx = pid.0 as usize;
                        let at = (epoch + ai.delay + publish_jitter(pid, epoch, ai.jitter))
                            .max(next_pub[idx]);
                        next_pub[idx] = at + 1;
                        let slot = (at % pending.len() as u64) as usize;
                        pending[slot].push(pid);
                    }
                    // ...finalise and publish the verdicts whose inference
                    // latency has elapsed (skipping processes that died or
                    // completed while the measurement was in flight)...
                    let due = (epoch % pending.len() as u64) as usize;
                    let due_pids = std::mem::take(&mut pending[due]);
                    for &pid in &due_pids {
                        let idx = pid.0 as usize;
                        let live = if idx < benign.len() {
                            !benign[idx].killed && !benign[idx].completed
                        } else {
                            attacks[idx - benign.len()].killed_at.is_none()
                        };
                        if live {
                            let inference = verdict(pid, &benign, &attacks, &mut rng);
                            publisher.publish(pid, inference);
                        }
                    }
                    pending[due] = {
                        let mut reclaimed = due_pids;
                        reclaimed.clear();
                        reclaimed
                    };
                    // ...let the flood land its decoys *after* the real
                    // verdicts (the attacker's winning move: with the ring
                    // full, `DropOldest`/`Coalesce` evict from the front,
                    // which is exactly where the legit verdicts sit)...
                    if let (Some(flood_pub), Some(flood)) = (&flood_pub, &flood) {
                        decoys.clear();
                        flood.decoys_into(epoch, &mut decoys);
                        for &(pid, cls) in &decoys {
                            flood_pub.publish(pid, cls);
                        }
                        flood_decoys += decoys.len() as u64;
                    }
                    // ...and tick on schedule, whatever has arrived.
                    engine.drain_tick()
                }
                _ => {
                    batch.clear();
                    for &pid in &measured {
                        let inference = verdict(pid, &benign, &attacks, &mut rng);
                        batch.push((pid, inference));
                    }
                    engine.tick(&batch)
                }
            }
        };
        engine_time += t0.elapsed();
        observations += responses.len() as u64;
        // Concurrent peak = the map as it stood before this tick's purge.
        let purged_this_tick = (engine.purged_total() - purged_before) as usize;
        peak_tracked = peak_tracked.max(engine.tracked() + purged_this_tick);

        for resp in &responses {
            let idx = resp.pid.0 as usize;
            if idx >= benign.len() + attacks.len() {
                continue; // a flood decoy: tracked by the engine, no tenant to credit
            }
            if idx < benign.len() {
                let proc = &mut benign[idx];
                if proc.killed || proc.completed {
                    continue; // a stale in-flight verdict; nothing to credit
                }
                proc.state = Some(resp.state);
                if resp.action == Action::Terminate {
                    proc.killed = true;
                    continue;
                }
                proc.cpu_share_sum += resp.resources.cpu;
                proc.epochs_run += 1;
                // Work accumulates at the enforced share; completion
                // after `lifetime` epoch-units of progress.
                if proc.cpu_share_sum >= proc.lifetime as f64 {
                    proc.completed = true;
                    let _ = engine.complete(proc.pid);
                }
            } else {
                let attack = &mut attacks[idx - benign.len()];
                attack.state = Some(resp.state);
                if resp.action == Action::Terminate && attack.killed_at.is_none() {
                    attack.killed_at = Some(epoch);
                }
            }
        }
    }

    let attacks_terminated = attacks.iter().filter(|a| a.killed_at.is_some()).count();
    let mean_epochs_to_kill = if attacks_terminated == 0 {
        f64::NAN
    } else {
        attacks
            .iter()
            .filter_map(|a| a.killed_at.map(|k| (k - a.arrival + 1) as f64))
            .sum::<f64>()
            / attacks_terminated as f64
    };
    let killed = benign.iter().filter(|p| p.killed).count();
    let completed = benign.iter().filter(|p| p.completed).count();
    let survivors: Vec<&BenignProc> = benign.iter().filter(|p| !p.killed).collect();
    let benign_slowdown_pct = if survivors.is_empty() {
        0.0
    } else {
        100.0
            * survivors
                .iter()
                .filter(|p| p.epochs_run > 0)
                .map(|p| 1.0 - p.cpu_share_sum / p.epochs_run as f64)
                .sum::<f64>()
            / survivors.len() as f64
    };
    let observations_per_sec = observations as f64 / engine_time.as_secs_f64().max(1e-9);

    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "attacks terminated".into(),
        format!("{attacks_terminated}/{}", cfg.attacks),
    ]);
    t.row(vec![
        "mean epochs to kill".into(),
        format!("{mean_epochs_to_kill:.1}"),
    ]);
    t.row(vec![
        "benign killed".into(),
        pct(100.0 * killed as f64 / cfg.benign_procs.max(1) as f64),
    ]);
    t.row(vec!["benign slowdown".into(), pct(benign_slowdown_pct)]);
    t.row(vec!["benign completed".into(), completed.to_string()]);
    t.row(vec!["peak tracked".into(), peak_tracked.to_string()]);
    t.row(vec!["purged".into(), engine.purged_total().to_string()]);
    t.row(vec![
        "live after final tick".into(),
        engine.tracked_live().to_string(),
    ]);
    t.row(vec![
        "engine throughput".into(),
        format!("{:.2} Mobs/s", observations_per_sec / 1e6),
    ]);
    let ingest_stats = engine.ingest_stats();
    if let Some(stats) = &ingest_stats {
        t.row(vec![
            "ingest published/drained".into(),
            format!("{}/{}", stats.published, stats.drained),
        ]);
        t.row(vec![
            "ingest dropped/coalesced".into(),
            format!("{}/{}", stats.dropped, stats.coalesced),
        ]);
        if cfg.flood.is_some() {
            t.row(vec![
                "flood decoys published".into(),
                flood_decoys.to_string(),
            ]);
            t.row(vec![
                "ingest priority/deflected".into(),
                format!("{}/{}", stats.priority_queued, stats.evictions_deflected),
            ]);
            t.row(vec![
                "ingest dropped by publisher".into(),
                if stats.dropped_by_publisher.is_empty() {
                    "-".into()
                } else {
                    stats
                        .dropped_by_publisher
                        .iter()
                        .enumerate()
                        .map(|(id, n)| format!("p{id}:{n}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                },
            ]);
        }
    }
    let fusion_stats = engine.fusion_stats();
    t.row(vec![
        "fusion verdicts/stale-decayed/escalations".into(),
        format!(
            "{}/{}/{}",
            fusion_stats.verdicts, fusion_stats.stale_decayed, fusion_stats.escalations
        ),
    ]);
    if cfg.fusion.is_some() {
        t.row(vec![
            "fusion verdicts per detector".into(),
            fusion_stats
                .per_detector
                .iter()
                .enumerate()
                .map(|(id, n)| format!("d{id}:{n}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    let detector_tier = if let Some(ft) = cfg.fusion {
        format!(
            "fused detectors: fast w={} every epoch + slow w={} every {} epochs \
             ({:.0}% dropout, stale decay {})",
            ft.fast_weight,
            ft.slow_weight,
            ft.slow_cadence,
            100.0 * ft.slow_dropout,
            ft.stale_decay
        )
    } else {
        match cfg.ingest {
            Some(ai) => {
                let mut tier = format!(
                    "async detectors: {} + 0..={} epochs latency, {:?} rings of {}/shard",
                    ai.delay, ai.jitter, ai.policy, ai.capacity
                );
                if let (Some(ft), Some(flood)) = (cfg.flood, &flood) {
                    tier.push_str(&format!(
                        "; noise flood: {}/shard/epoch (x{} burst every {}) at shards {:?}, \
                         defense priority_lane={} fair_queueing={}",
                        ft.rate,
                        ft.burst,
                        ft.burst_period,
                        flood.target_shards(),
                        ft.defense.priority_lane,
                        ft.defense.fair_queueing
                    ));
                }
                tier
            }
            None => "synchronous detectors".to_string(),
        }
    };
    let report = format!(
        "Multi-tenant machine — {} benign + {} attacks over {} epochs, \
         {} shards ({:?} execution), N* = {}\n\
         ({} observations through ShardedEngine::{}; {})\n\n{}",
        cfg.benign_procs,
        cfg.attacks,
        cfg.epochs,
        cfg.shards,
        cfg.execution,
        cfg.n_star,
        observations,
        if cfg.ingest.is_some() || cfg.fusion.is_some() {
            "drain_tick"
        } else {
            "tick"
        },
        detector_tier,
        t.render()
    );

    MultiTenantResult {
        attacks_terminated,
        mean_epochs_to_kill,
        benign_killed_pct: 100.0 * killed as f64 / cfg.benign_procs.max(1) as f64,
        benign_slowdown_pct,
        benign_completed: completed,
        peak_tracked,
        purged: engine.purged_total(),
        final_tracked_live: engine.tracked_live(),
        observations,
        observations_per_sec,
        ingest: ingest_stats,
        flood_decoys,
        fusion_stats,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_is_terminated() {
        let r = run(&MultiTenantConfig::quick());
        assert_eq!(r.attacks_terminated, 3);
        // Termination needs at least N* + 1 epochs from arrival.
        assert!(r.mean_epochs_to_kill >= 11.0, "{}", r.mean_epochs_to_kill);
    }

    #[test]
    fn the_fleet_survives_mostly_unharmed() {
        let r = run(&MultiTenantConfig::quick());
        // ~7 verdict cycles at verdict_fpr = 0.5% each: a few percent of
        // wrongful terminations is the expected operating point.
        assert!(r.benign_killed_pct < 8.0, "{}", r.benign_killed_pct);
        assert!(r.benign_slowdown_pct < 20.0, "{}", r.benign_slowdown_pct);
    }

    #[test]
    fn terminated_processes_are_purged_not_leaked() {
        let r = run(&MultiTenantConfig::quick());
        // Attacks were evicted, so the live set excludes all of them.
        assert!(r.purged >= 3, "{}", r.purged);
        assert!(r.final_tracked_live <= 300);
        // The concurrent peak can never exceed the whole population.
        assert!(r.peak_tracked <= 303, "{}", r.peak_tracked);
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = MultiTenantConfig::quick();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.attacks_terminated, b.attacks_terminated);
        assert_eq!(a.benign_killed_pct, b.benign_killed_pct);
        assert_eq!(a.benign_slowdown_pct, b.benign_slowdown_pct);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.purged, b.purged);
    }

    #[test]
    fn shard_count_does_not_change_the_outcome() {
        let base = MultiTenantConfig::quick();
        let a = run(&base);
        let b = run(&MultiTenantConfig { shards: 1, ..base });
        assert_eq!(a.attacks_terminated, b.attacks_terminated);
        assert_eq!(a.benign_killed_pct, b.benign_killed_pct);
        assert_eq!(a.observations, b.observations);
    }

    #[test]
    fn pool_execution_does_not_change_the_outcome() {
        let base = MultiTenantConfig::quick();
        let scoped = run(&base);
        let pooled = run(&MultiTenantConfig {
            execution: ExecutionMode::Pool,
            ..base
        });
        assert_eq!(scoped.attacks_terminated, pooled.attacks_terminated);
        assert_eq!(scoped.mean_epochs_to_kill, pooled.mean_epochs_to_kill);
        assert_eq!(scoped.benign_killed_pct, pooled.benign_killed_pct);
        assert_eq!(scoped.benign_slowdown_pct, pooled.benign_slowdown_pct);
        assert_eq!(scoped.benign_completed, pooled.benign_completed);
        assert_eq!(scoped.peak_tracked, pooled.peak_tracked);
        assert_eq!(scoped.purged, pooled.purged);
        assert_eq!(scoped.observations, pooled.observations);
    }

    #[test]
    fn report_renders() {
        let r = run(&MultiTenantConfig::quick());
        assert!(r.report.contains("Multi-tenant machine"));
        assert!(r.report.contains("attacks terminated"));
        assert!(r.report.contains("synchronous detectors"));
        assert!(r.observations_per_sec > 0.0);
        assert!(r.ingest.is_none());
    }

    /// Slow, jittery detectors (3 + 0..=2 epochs of verdict latency) must
    /// not stall the epoch driver: every attack still dies, only later —
    /// detection *lag*, not response-tier stall.
    #[test]
    fn async_ingest_kills_every_attack_despite_detector_latency() {
        let sync = run(&MultiTenantConfig::quick());
        let async_ = run(&MultiTenantConfig::quick_async());
        assert_eq!(async_.attacks_terminated, 3);
        // The verdicts arrive >= `delay` epochs late, so the kills land
        // measurably later than the synchronous driver's...
        assert!(
            async_.mean_epochs_to_kill >= sync.mean_epochs_to_kill + 3.0,
            "async {} vs sync {}",
            async_.mean_epochs_to_kill,
            sync.mean_epochs_to_kill
        );
        // ...but latency is bounded by delay + jitter (plus verdict-cycle
        // slack), nowhere near a stalled driver's horizon.
        assert!(
            async_.mean_epochs_to_kill <= sync.mean_epochs_to_kill + 12.0,
            "async {} vs sync {}",
            async_.mean_epochs_to_kill,
            sync.mean_epochs_to_kill
        );
        // The fleet is still mostly unharmed.
        assert!(
            async_.benign_killed_pct < 8.0,
            "{}",
            async_.benign_killed_pct
        );
    }

    #[test]
    fn async_ingest_is_deterministic() {
        let cfg = MultiTenantConfig::quick_async();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.attacks_terminated, b.attacks_terminated);
        assert_eq!(a.mean_epochs_to_kill, b.mean_epochs_to_kill);
        assert_eq!(a.benign_killed_pct, b.benign_killed_pct);
        assert_eq!(a.benign_slowdown_pct, b.benign_slowdown_pct);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.purged, b.purged);
        assert_eq!(a.ingest, b.ingest);
    }

    #[test]
    fn async_ingest_outcome_is_execution_mode_invariant() {
        let base = MultiTenantConfig::quick_async();
        let scoped = run(&base);
        let pooled = run(&MultiTenantConfig {
            execution: ExecutionMode::Pool,
            ..base
        });
        assert_eq!(scoped.attacks_terminated, pooled.attacks_terminated);
        assert_eq!(scoped.mean_epochs_to_kill, pooled.mean_epochs_to_kill);
        assert_eq!(scoped.benign_killed_pct, pooled.benign_killed_pct);
        assert_eq!(scoped.benign_slowdown_pct, pooled.benign_slowdown_pct);
        assert_eq!(scoped.observations, pooled.observations);
        assert_eq!(scoped.purged, pooled.purged);
        assert_eq!(scoped.ingest, pooled.ingest);
    }

    /// The fused pair: a fast-weak member (70% TPR, bursty-benign FPR)
    /// alone would be unusable, but fused with the slow-strong member it
    /// still kills every attack — and the graduated ladder only kills when
    /// the weighted evidence mass is overwhelming.
    #[test]
    fn fused_tier_kills_every_attack() {
        let r = run(&MultiTenantConfig::quick_fused());
        assert_eq!(r.attacks_terminated, 3);
        assert!(r.fusion_stats.verdicts > 0);
        assert!(r.fusion_stats.per_detector.len() >= 2);
        // The slow member publishes every 4th window, minus dropouts.
        assert!(r.fusion_stats.per_detector[1] < r.fusion_stats.per_detector[0]);
        assert!(
            r.fusion_stats.stale_decayed > 0,
            "dropout windows must age some held verdicts past their cadence"
        );
        assert!(r.fusion_stats.escalations > 0);
        assert!(r.report.contains("fused detectors"));
        assert!(r.report.contains("fusion verdicts per detector"));
    }

    /// Requiring corroborated evidence mass (> 0.85 under the graduated
    /// ladder) means a fast-member burst alone can never kill: the fused
    /// wrongful-termination rate stays far below the fast member's FPR.
    #[test]
    fn fused_tier_protects_the_fleet() {
        let r = run(&MultiTenantConfig::quick_fused());
        assert!(r.benign_killed_pct < 5.0, "{}", r.benign_killed_pct);
    }

    #[test]
    fn fused_tier_is_deterministic() {
        let cfg = MultiTenantConfig::quick_fused();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.attacks_terminated, b.attacks_terminated);
        assert_eq!(a.mean_epochs_to_kill, b.mean_epochs_to_kill);
        assert_eq!(a.benign_killed_pct, b.benign_killed_pct);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.fusion_stats, b.fusion_stats);
    }

    #[test]
    fn fused_tier_outcome_is_execution_mode_invariant() {
        let base = MultiTenantConfig::quick_fused();
        let scoped = run(&base);
        let pooled = run(&MultiTenantConfig {
            execution: ExecutionMode::Pool,
            ..base
        });
        assert_eq!(scoped.attacks_terminated, pooled.attacks_terminated);
        assert_eq!(scoped.mean_epochs_to_kill, pooled.mean_epochs_to_kill);
        assert_eq!(scoped.benign_killed_pct, pooled.benign_killed_pct);
        assert_eq!(scoped.fusion_stats, pooled.fusion_stats);
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn fused_and_async_tiers_cannot_be_combined() {
        let cfg = MultiTenantConfig {
            fusion: Some(FusionTier::default()),
            ..MultiTenantConfig::quick_async()
        };
        let _ = run(&cfg);
    }

    /// The noise-floor DoS: with the rings undefended, a decoy flood at
    /// the attack pids' shards evicts every real verdict there — no
    /// attack is ever killed, and the loss shows up only in the counters.
    #[test]
    fn noise_flood_masks_the_attack_when_undefended() {
        let r = run(&MultiTenantConfig::quick_flood(IngestDefense::default()));
        assert_eq!(r.attacks_terminated, 0, "every attack verdict evicted");
        assert!(r.mean_epochs_to_kill.is_nan());
        assert!(r.flood_decoys > 0);
        let stats = r.ingest.expect("flood runs expose ingest stats");
        assert!(stats.dropped > 0);
        // Publisher 1 (the legit detector tier) loses verdicts wholesale;
        // no defense means no priority lane and no deflections.
        assert!(stats.dropped_by_publisher.get(1).copied().unwrap_or(0) > 0);
        assert_eq!(stats.priority_queued, 0);
        assert_eq!(stats.evictions_deflected, 0);
        assert!(r.report.contains("noise flood"));
        assert!(r.report.contains("ingest dropped by publisher"));
    }

    /// The overload defense (priority lanes + per-publisher fair
    /// queueing) restores every kill at the undisturbed async baseline's
    /// latency — with the flood still running at full rate.
    #[test]
    fn overload_defense_restores_kills_under_flood() {
        let baseline = run(&MultiTenantConfig::quick_async());
        let r = run(&MultiTenantConfig::quick_flood(IngestDefense::full()));
        assert_eq!(r.attacks_terminated, 3);
        assert!(
            r.mean_epochs_to_kill <= baseline.mean_epochs_to_kill + 2.0,
            "defended flood {} vs baseline {}",
            r.mean_epochs_to_kill,
            baseline.mean_epochs_to_kill
        );
        let stats = r.ingest.expect("flood runs expose ingest stats");
        assert!(stats.priority_queued > 0, "escalated pids rode the lane");
        assert!(stats.evictions_deflected > 0);
        // Fair queueing charges the flood for its own decoys: the flood
        // publisher (id 2) pays an order of magnitude more than legit.
        let legit = stats.dropped_by_publisher.get(1).copied().unwrap_or(0);
        let flood = stats.dropped_by_publisher.get(2).copied().unwrap_or(0);
        assert!(flood > 10 * legit.max(1), "flood {flood} vs legit {legit}");
    }

    #[test]
    fn flood_run_is_deterministic() {
        let cfg = MultiTenantConfig::quick_flood(IngestDefense::full());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.attacks_terminated, b.attacks_terminated);
        assert_eq!(a.mean_epochs_to_kill, b.mean_epochs_to_kill);
        assert_eq!(a.benign_killed_pct, b.benign_killed_pct);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.flood_decoys, b.flood_decoys);
        assert_eq!(a.ingest, b.ingest);
    }

    #[test]
    #[should_panic(expected = "rides on the async ingest rings")]
    fn flood_without_async_ingest_is_rejected() {
        let cfg = MultiTenantConfig {
            ingest: None,
            ..MultiTenantConfig::quick_flood(IngestDefense::default())
        };
        let _ = run(&cfg);
    }

    #[test]
    fn async_ingest_loses_nothing_at_this_scale_and_reports_stats() {
        let r = run(&MultiTenantConfig::quick_async());
        let stats = r.ingest.expect("async runs expose ingest stats");
        assert_eq!(stats.dropped, 0, "rings are sized for the quick fleet");
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.published, stats.drained + stats.queued as u64);
        // In-flight verdicts for processes that outlived the horizon may
        // still be queued; everything published on time was consumed.
        assert!(r.report.contains("async detectors"));
        assert!(r.report.contains("ingest published/drained"));
    }
}
