//! The single-threaded benchmark workload model.

use crate::roster::BenchmarkSpec;
use rand::Rng;
use valkyrie_hpc::{HpcEvent, Signature};
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};

/// A benign benchmark process.
///
/// Progress is "epochs of work": one unthrottled epoch completes one unit.
/// HPC emission follows the family signature; with probability
/// `spec.burst_prob` an epoch emits a *burst* sample (hot caches, faults)
/// that a simple statistical detector will flag — the source of false
/// positives.
///
/// # Examples
///
/// ```
/// use valkyrie_workloads::{roster, BenchmarkWorkload};
/// let spec = roster().into_iter().next().unwrap();
/// let w = BenchmarkWorkload::new(spec.clone());
/// assert_eq!(w.spec().name, spec.name);
/// ```
#[derive(Debug, Clone)]
pub struct BenchmarkWorkload {
    spec: BenchmarkSpec,
    signature: Signature,
    work_done: f64,
    epochs_run: u64,
}

impl BenchmarkWorkload {
    /// Creates the workload from its roster entry.
    pub fn new(spec: BenchmarkSpec) -> Self {
        let signature = spec.family.signature();
        Self {
            spec,
            signature,
            work_done: 0.0,
            epochs_run: 0,
        }
    }

    /// The roster entry.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Work completed so far, in full-speed epochs.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Wall-clock epochs the workload has run.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Emits this epoch's HPC sample, bursting with the spec's propensity.
    ///
    /// A burst multiplies the cache-pressure events (LLC misses, L1d misses,
    /// dTLB misses) by a large factor — the profile that confuses HPC-based
    /// detectors (phase changes, working-set migrations).
    pub fn emit_sample<R: Rng + ?Sized>(&self, rng: &mut R, share: f64) -> valkyrie_hpc::HpcSample {
        let mut sample = self.signature.sample(rng, share);
        if rng.gen::<f64>() < self.spec.burst_prob {
            for ev in [
                HpcEvent::LlcMisses,
                HpcEvent::L1dMisses,
                HpcEvent::DtlbMisses,
                HpcEvent::PageFaults,
            ] {
                sample.set(ev, sample.get(ev) * 12.0 + 1.0e6);
            }
        }
        sample
    }
}

impl Workload for BenchmarkWorkload {
    fn name(&self) -> &str {
        self.spec.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        let share = ctx.cpu_share();
        let work = share * ctx.mem_efficiency;
        self.work_done += work;
        self.epochs_run += 1;
        EpochReport {
            progress: work,
            hpc: self.emit_sample(ctx.rng, share.max(0.05)),
            completed: self.work_done >= self.spec.epochs_to_complete as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::roster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use valkyrie_sim::machine::{Machine, MachineConfig};

    fn spec_by_name(name: &str) -> BenchmarkSpec {
        roster().into_iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn completes_in_nominal_time_unthrottled() {
        let mut spec = spec_by_name("gcc");
        spec.epochs_to_complete = 25;
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(BenchmarkWorkload::new(spec)));
        let mut done_at = None;
        for e in 1..=40 {
            m.run_epoch();
            if m.is_completed(pid) {
                done_at = Some(e);
                break;
            }
        }
        assert_eq!(done_at, Some(25));
    }

    #[test]
    fn throttled_benchmark_takes_proportionally_longer() {
        let mut spec = spec_by_name("gcc");
        spec.epochs_to_complete = 10;
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(BenchmarkWorkload::new(spec)));
        m.set_cpu_quota(pid, 0.5);
        let mut epochs = 0;
        for _ in 0..100 {
            m.run_epoch();
            epochs += 1;
            if m.is_completed(pid) {
                break;
            }
        }
        assert!((18..=22).contains(&epochs), "took {epochs} epochs at 50%");
    }

    #[test]
    fn bursts_occur_at_configured_rate() {
        let spec = spec_by_name("blender_r");
        let w = BenchmarkWorkload::new(spec);
        let mut rng = StdRng::seed_from_u64(1);
        let baseline = Signature::graphics_bound();
        let mean_llc = baseline.mean()[HpcEvent::LlcMisses.index()];
        let mut bursts = 0;
        let n = 2000;
        for _ in 0..n {
            let s = w.emit_sample(&mut rng, 1.0);
            if s.get(HpcEvent::LlcMisses) > 5.0 * mean_llc {
                bursts += 1;
            }
        }
        let rate = bursts as f64 / n as f64;
        assert!((rate - 0.30).abs() < 0.05, "burst rate {rate}");
    }

    #[test]
    fn clean_programs_never_burst() {
        let clean = roster()
            .into_iter()
            .find(|s| s.burst_prob == 0.0)
            .expect("roster has clean programs");
        let w = BenchmarkWorkload::new(clean);
        let mut rng = StdRng::seed_from_u64(2);
        let mean_llc = w.signature.mean()[HpcEvent::LlcMisses.index()];
        for _ in 0..500 {
            let s = w.emit_sample(&mut rng, 1.0);
            assert!(s.get(HpcEvent::LlcMisses) < 5.0 * mean_llc + 1.0);
        }
    }
}
