//! Deterministic best-response search over adaptive-attacker parameters.
//!
//! The adaptive tier asks, per response law: *what is the most progress any
//! attacker in a strategy family can extract?* That is an optimisation over
//! the family's parameter vector, and because every evaluation is a seeded
//! replay, the search must be exactly reproducible: same spec, same
//! objective, same result, debug or release.
//!
//! [`best_response`] runs an exhaustive [`grid_search`] over the cartesian
//! product of the per-parameter grids, then sharpens the winner with
//! [`refine`] — a fixed-schedule coordinate descent that tries half-grid
//! steps around the incumbent, halving the step each round. Ties keep the
//! first candidate in iteration order, non-finite objective values lose to
//! everything, and no randomness is involved anywhere, so golden tests can
//! pin the found optimum bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use valkyrie_workloads::adaptive::{best_response, ParamSpec};
//! // Maximise -(x-0.3)^2 - (y-0.7)^2 over a coarse grid + refinement.
//! let specs = [
//!     ParamSpec::new("x", vec![0.0, 0.5, 1.0]),
//!     ParamSpec::new("y", vec![0.0, 0.5, 1.0]),
//! ];
//! let found = best_response(&specs, 3, &mut |p: &[f64]| {
//!     -(p[0] - 0.3).powi(2) - (p[1] - 0.7).powi(2)
//! });
//! assert!((found.params[0] - 0.3).abs() < 0.15);
//! assert!((found.params[1] - 0.7).abs() < 0.15);
//! ```

/// One searchable parameter: a name (for reports) and its grid values.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Stable label used in strategy descriptions.
    pub name: &'static str,
    /// Grid values, in evaluation order. Must be non-empty; refinement
    /// steps stay within `[min, max]` of this grid.
    pub grid: Vec<f64>,
}

impl ParamSpec {
    /// A parameter with the given grid (panics if empty).
    ///
    /// # Panics
    ///
    /// Panics when `grid` is empty — a parameter with no candidate values
    /// cannot be searched.
    pub fn new(name: &'static str, grid: Vec<f64>) -> Self {
        assert!(!grid.is_empty(), "parameter {name} has an empty grid");
        Self { name, grid }
    }

    fn min(&self) -> f64 {
        self.grid.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn max(&self) -> f64 {
        self.grid.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Half the widest adjacent gap in the grid — the initial refinement
    /// step. Zero for single-point grids (those parameters are pinned).
    fn initial_step(&self) -> f64 {
        let mut widest = 0.0f64;
        for pair in self.grid.windows(2) {
            widest = widest.max((pair[1] - pair[0]).abs());
        }
        widest * 0.5
    }
}

/// The best parameter vector a search found, with its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponse {
    /// The winning parameter vector (same order as the specs).
    pub params: Vec<f64>,
    /// Objective value at the winner (higher is better).
    pub score: f64,
    /// Number of objective evaluations spent.
    pub evaluations: u64,
}

fn score_of(eval: &mut dyn FnMut(&[f64]) -> f64, params: &[f64]) -> f64 {
    let s = eval(params);
    if s.is_finite() {
        s
    } else {
        f64::NEG_INFINITY
    }
}

/// Exhaustively evaluates the cartesian product of the grids and returns
/// the (first) maximiser.
pub fn grid_search(specs: &[ParamSpec], eval: &mut dyn FnMut(&[f64]) -> f64) -> BestResponse {
    assert!(!specs.is_empty(), "nothing to search");
    let mut index = vec![0usize; specs.len()];
    let mut params: Vec<f64> = specs.iter().map(|s| s.grid[0]).collect();
    let mut best = BestResponse {
        params: params.clone(),
        score: f64::NEG_INFINITY,
        evaluations: 0,
    };
    loop {
        let score = score_of(eval, &params);
        best.evaluations += 1;
        if score > best.score {
            best.score = score;
            best.params = params.clone();
        }
        // Odometer increment over the grid indices.
        let mut carry = true;
        for (slot, spec) in index.iter_mut().zip(specs) {
            if !carry {
                break;
            }
            *slot += 1;
            if *slot < spec.grid.len() {
                carry = false;
            } else {
                *slot = 0;
            }
        }
        for ((p, slot), spec) in params.iter_mut().zip(&index).zip(specs) {
            *p = spec.grid[*slot];
        }
        if carry {
            return best;
        }
    }
}

/// Coordinate descent around `start`: for `rounds` rounds, each parameter in
/// turn tries ± the current step (clamped to the grid's range), keeping
/// strict improvements; the step halves between rounds.
pub fn refine(
    specs: &[ParamSpec],
    start: BestResponse,
    rounds: u32,
    eval: &mut dyn FnMut(&[f64]) -> f64,
) -> BestResponse {
    let mut best = start;
    let mut steps: Vec<f64> = specs.iter().map(ParamSpec::initial_step).collect();
    for _ in 0..rounds {
        for (i, spec) in specs.iter().enumerate() {
            if steps[i] <= 0.0 {
                continue;
            }
            for dir in [-1.0, 1.0] {
                let candidate_value =
                    (best.params[i] + dir * steps[i]).clamp(spec.min(), spec.max());
                if candidate_value == best.params[i] {
                    continue;
                }
                let mut candidate = best.params.clone();
                candidate[i] = candidate_value;
                let score = score_of(eval, &candidate);
                best.evaluations += 1;
                if score > best.score {
                    best.score = score;
                    best.params = candidate;
                }
            }
        }
        for step in &mut steps {
            *step *= 0.5;
        }
    }
    best
}

/// Grid search followed by `rounds` of coordinate refinement.
pub fn best_response(
    specs: &[ParamSpec],
    rounds: u32,
    eval: &mut dyn FnMut(&[f64]) -> f64,
) -> BestResponse {
    let coarse = grid_search(specs, eval);
    refine(specs, coarse, rounds, eval)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ParamSpec> {
        vec![
            ParamSpec::new("a", vec![0.0, 0.5, 1.0]),
            ParamSpec::new("b", vec![0.0, 1.0]),
        ]
    }

    #[test]
    fn grid_search_visits_the_whole_product() {
        let mut seen = Vec::new();
        let best = grid_search(&specs(), &mut |p: &[f64]| {
            seen.push((p[0], p[1]));
            p[0] + p[1]
        });
        assert_eq!(best.evaluations, 6);
        assert_eq!(seen.len(), 6);
        assert_eq!(best.params, vec![1.0, 1.0]);
        assert_eq!(best.score, 2.0);
    }

    #[test]
    fn ties_keep_the_first_candidate_in_grid_order() {
        let best = grid_search(&specs(), &mut |_: &[f64]| 1.0);
        assert_eq!(best.params, vec![0.0, 0.0]);
    }

    #[test]
    fn non_finite_scores_lose_to_everything() {
        let best = grid_search(&specs(), &mut |p: &[f64]| {
            if p[0] == 0.0 {
                f64::NAN
            } else {
                -p[0]
            }
        });
        assert_eq!(best.params[0], 0.5);
    }

    #[test]
    fn refinement_moves_off_grid_toward_the_optimum() {
        let spec = vec![ParamSpec::new("x", vec![0.0, 0.5, 1.0])];
        let mut objective = |p: &[f64]| -(p[0] - 0.6).powi(2);
        let found = best_response(&spec, 4, &mut objective);
        assert!(
            (found.params[0] - 0.6).abs() < 0.07,
            "found {}",
            found.params[0]
        );
        // Refinement never leaves the grid's range.
        assert!(found.params[0] <= 1.0 && found.params[0] >= 0.0);
    }

    #[test]
    fn refinement_is_deterministic() {
        let mut objective = |p: &[f64]| -(p[0] - 0.3).powi(2) - (p[1] - 0.2).powi(2);
        let a = best_response(&specs(), 3, &mut objective);
        let b = best_response(&specs(), 3, &mut objective);
        assert_eq!(a, b);
    }

    #[test]
    fn single_point_grids_are_pinned() {
        let spec = vec![
            ParamSpec::new("fixed", vec![0.25]),
            ParamSpec::new("free", vec![0.0, 1.0]),
        ];
        let found = best_response(&spec, 3, &mut |p: &[f64]| -(p[1] - 0.4).powi(2) + p[0]);
        assert_eq!(found.params[0], 0.25);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let _ = ParamSpec::new("broken", vec![]);
    }
}
