//! The benchmark roster: names, suites, behaviour families and burst
//! propensities.

use valkyrie_hpc::Signature;

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (integer + floating point).
    Spec2006,
    /// SPEC CPU2017 rate (single-threaded).
    Spec2017Rate,
    /// SPEC CPU2017 speed (single-threaded configuration).
    Spec2017Speed,
    /// SPECViewperf 13.
    ViewPerf13,
    /// STREAM memory-bandwidth kernels.
    Stream,
    /// SPEC CPU2017 floating-point, 4-thread configuration.
    Spec2017Mt,
    /// Synthetic benign service fleet (see [`crate::fleet`]).
    Fleet,
}

impl Suite {
    /// Display label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Spec2006 => "SPEC-2006",
            Suite::Spec2017Rate => "SPEC-2017",
            Suite::Spec2017Speed => "SPEC-2017(s)",
            Suite::ViewPerf13 => "SPECViewperf-13",
            Suite::Stream => "STREAM",
            Suite::Spec2017Mt => "SPEC-2017-MT",
            Suite::Fleet => "Fleet",
        }
    }
}

/// Resource-behaviour family (selects the HPC signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Compute-bound integer/FP code.
    CpuBound,
    /// Memory-bandwidth-bound code.
    MemoryBound,
    /// Graphics/visualisation code.
    Graphics,
}

impl Family {
    /// The generative HPC signature for this family.
    pub fn signature(self) -> Signature {
        match self {
            Family::CpuBound => Signature::cpu_bound(),
            Family::MemoryBound => Signature::memory_bound(),
            Family::Graphics => Signature::graphics_bound(),
        }
    }
}

/// One benchmark's behaviour model.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (SPEC-style).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Behaviour family.
    pub family: Family,
    /// Epochs to complete at full speed (100 ms each).
    pub epochs_to_complete: u64,
    /// Fraction of epochs whose HPC sample bursts enough to be flagged by
    /// the statistical detector (the program's false-positive propensity).
    pub burst_prob: f64,
    /// Threads (1 for the single-threaded roster).
    pub threads: usize,
}

impl BenchmarkSpec {
    fn new(name: &'static str, suite: Suite, family: Family, epochs: u64, burst_prob: f64) -> Self {
        Self {
            name,
            suite,
            family,
            epochs_to_complete: epochs,
            burst_prob,
            threads: 1,
        }
    }

    /// A single-threaded synthetic service spec in the [`Suite::Fleet`]
    /// suite — the public constructor behind generated rosters
    /// ([`crate::fleet::fleet_instance`]) and churn-model arrivals, which
    /// build specs outside the fixed 77-program table.
    pub fn synthetic(name: &'static str, family: Family, epochs: u64, burst_prob: f64) -> Self {
        Self::new(
            name,
            Suite::Fleet,
            family,
            epochs.max(1),
            burst_prob.clamp(0.0, 1.0),
        )
    }
}

/// Deterministic per-name jitter in `[0, 1)`.
fn name_hash(name: &str) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % 10_000) as f64 / 10_000.0
}

fn base_burst(family: Family, name: &str) -> f64 {
    // Family base + per-name jitter; memory/graphics programs look more
    // like cache attacks through the counters.
    let base = match family {
        Family::CpuBound => 0.012,
        Family::MemoryBound => 0.085,
        Family::Graphics => 0.065,
    };
    let jitter = name_hash(name);
    // ~45 % of CPU-bound programs are essentially never flagged.
    if family == Family::CpuBound && jitter < 0.45 {
        return 0.0;
    }
    base * (0.4 + 1.6 * jitter)
}

fn runtime(name: &str) -> u64 {
    // 200..=700 epochs (20-70 simulated seconds), deterministic per name.
    200 + (name_hash(name) * 500.0) as u64
}

/// The 77 single-threaded benchmarks of Fig. 5a.
pub fn roster() -> Vec<BenchmarkSpec> {
    use Family::*;
    use Suite::*;
    let mut v = Vec::with_capacity(77);

    // SPEC CPU2006 integer (12).
    for name in [
        "perlbench",
        "bzip2",
        "gcc",
        "mcf",
        "gobmk",
        "hmmer",
        "sjeng",
        "libquantum",
        "h264ref",
        "omnetpp",
        "astar",
        "xalancbmk",
    ] {
        let fam = if matches!(name, "mcf" | "libquantum" | "omnetpp") {
            MemoryBound
        } else {
            CpuBound
        };
        v.push(BenchmarkSpec::new(
            name,
            Spec2006,
            fam,
            runtime(name),
            base_burst(fam, name),
        ));
    }
    // SPEC CPU2006 floating point (17).
    for name in [
        "bwaves",
        "gamess",
        "milc",
        "zeusmp",
        "gromacs",
        "cactusADM",
        "leslie3d",
        "namd",
        "dealII",
        "soplex",
        "povray",
        "calculix",
        "GemsFDTD",
        "tonto",
        "lbm",
        "wrf",
        "sphinx3",
    ] {
        let fam = if matches!(name, "bwaves" | "milc" | "leslie3d" | "lbm" | "GemsFDTD") {
            MemoryBound
        } else {
            CpuBound
        };
        v.push(BenchmarkSpec::new(
            name,
            Spec2006,
            fam,
            runtime(name),
            base_burst(fam, name),
        ));
    }
    // SPEC CPU2017 rate (23).
    for name in [
        "perlbench_r",
        "gcc_r",
        "mcf_r",
        "omnetpp_r",
        "xalancbmk_r",
        "x264_r",
        "deepsjeng_r",
        "leela_r",
        "exchange2_r",
        "xz_r",
        "bwaves_r",
        "cactuBSSN_r",
        "namd_r",
        "parest_r",
        "povray_r",
        "lbm_r",
        "wrf_r",
        "blender_r",
        "cam4_r",
        "imagick_r",
        "nab_r",
        "fotonik3d_r",
        "roms_r",
    ] {
        let fam = if matches!(
            name,
            "mcf_r" | "bwaves_r" | "lbm_r" | "fotonik3d_r" | "roms_r"
        ) {
            MemoryBound
        } else if matches!(name, "blender_r" | "povray_r" | "imagick_r") {
            Graphics
        } else {
            CpuBound
        };
        // The paper's running example: blender_r is falsely classified in
        // 30 % of epochs.
        let burst = if name == "blender_r" {
            0.30
        } else {
            base_burst(fam, name)
        };
        v.push(BenchmarkSpec::new(
            name,
            Spec2017Rate,
            fam,
            runtime(name),
            burst,
        ));
    }
    // SPEC CPU2017 speed, single-threaded configuration (12).
    for name in [
        "perlbench_s",
        "gcc_s",
        "mcf_s",
        "omnetpp_s",
        "xalancbmk_s",
        "x264_s",
        "deepsjeng_s",
        "leela_s",
        "exchange2_s",
        "xz_s",
        "lbm_s",
        "wrf_s",
    ] {
        let fam = if matches!(name, "mcf_s" | "lbm_s") {
            MemoryBound
        } else {
            CpuBound
        };
        v.push(BenchmarkSpec::new(
            name,
            Spec2017Speed,
            fam,
            runtime(name),
            base_burst(fam, name),
        ));
    }
    // SPECViewperf 13 (9).
    for name in [
        "3dsmax-06",
        "catia-05",
        "creo-02",
        "energy-02",
        "maya-05",
        "medical-02",
        "showcase-02",
        "snx-03",
        "sw-04",
    ] {
        v.push(BenchmarkSpec::new(
            name,
            ViewPerf13,
            Graphics,
            runtime(name),
            base_burst(Graphics, name),
        ));
    }
    // STREAM (4).
    for name in ["stream-copy", "stream-scale", "stream-add", "stream-triad"] {
        v.push(BenchmarkSpec::new(
            name,
            Stream,
            MemoryBound,
            runtime(name),
            base_burst(MemoryBound, name),
        ));
    }
    debug_assert_eq!(v.len(), 77);
    v
}

/// The 4-thread SPEC CPU2017 floating-point programs of Fig. 5a's
/// multi-threaded bars.
pub fn multithreaded_roster() -> Vec<BenchmarkSpec> {
    [
        "bwaves_s",
        "cactuBSSN_s",
        "lbm_mt",
        "wrf_mt",
        "cam4_s",
        "pop2_s",
        "imagick_mt",
        "nab_s",
        "fotonik3d_mt",
        "roms_mt",
    ]
    .into_iter()
    .map(|name| {
        let fam = if matches!(name, "bwaves_s" | "lbm_mt" | "fotonik3d_mt" | "roms_mt") {
            Family::MemoryBound
        } else {
            Family::CpuBound
        };
        let mut spec = BenchmarkSpec::new(
            name,
            Suite::Spec2017Mt,
            fam,
            runtime(name),
            // Bursts are per thread; see `multithread`.
            base_burst(fam, name).max(0.055),
        );
        spec.threads = 4;
        spec
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_77_single_threaded_programs() {
        let r = roster();
        assert_eq!(r.len(), 77);
        assert!(r.iter().all(|s| s.threads == 1));
    }

    #[test]
    fn roster_names_are_unique() {
        let r = roster();
        let mut names: Vec<_> = r.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 77);
    }

    #[test]
    fn blender_r_bursts_30_percent() {
        let r = roster();
        let blender = r.iter().find(|s| s.name == "blender_r").unwrap();
        assert_eq!(blender.burst_prob, 0.30);
    }

    #[test]
    fn average_burst_rate_matches_paper_4_percent() {
        // "the detector … classifies programs from the SPEC-2006 suite as
        // malicious in 4% of the epochs, on average" — roster-wide we stay
        // in the same ballpark.
        let r = roster();
        let mean: f64 = r.iter().map(|s| s.burst_prob).sum::<f64>() / r.len() as f64;
        assert!(mean > 0.015 && mean < 0.08, "mean burst rate {mean}");
    }

    #[test]
    fn many_programs_are_never_flagged() {
        let r = roster();
        let clean = r.iter().filter(|s| s.burst_prob == 0.0).count();
        // Fig. 5a: 35 of 77 programs have < 1% slowdowns.
        assert!(clean >= 15, "only {clean} clean programs");
    }

    #[test]
    fn runtimes_are_bounded() {
        for s in roster() {
            assert!(s.epochs_to_complete >= 200 && s.epochs_to_complete <= 700);
        }
    }

    #[test]
    fn multithreaded_roster_is_4_threads() {
        let r = multithreaded_roster();
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|s| s.threads == 4));
        assert!(r.iter().all(|s| s.suite == Suite::Spec2017Mt));
    }

    #[test]
    fn suite_labels_are_distinct() {
        let labels: Vec<_> = [
            Suite::Spec2006,
            Suite::Spec2017Rate,
            Suite::Spec2017Speed,
            Suite::ViewPerf13,
            Suite::Stream,
            Suite::Spec2017Mt,
            Suite::Fleet,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
