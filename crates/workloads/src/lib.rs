//! The benign benchmark roster used to measure false-positive slowdowns
//! (paper Fig. 5a/5b, Table IV).
//!
//! The paper evaluates 77 single-threaded programs across SPEC CPU2006,
//! SPEC CPU2017, SPECViewperf-13 and STREAM, plus 4-thread SPEC CPU2017
//! floating-point programs. Each entry here is a behaviour model: a
//! resource family (CPU / memory / graphics bound), a nominal running time,
//! an HPC signature and — crucially — a *burst propensity*: the fraction of
//! epochs in which the program's counters spike enough to look malicious to
//! a simple statistical detector. The paper's running example `blender_r`
//! is "falsely classified by the detector in 30 % of the epochs"; the
//! roster-wide average matches the paper's ≈4 % FP epochs on SPEC.
//!
//! # Examples
//!
//! ```
//! use valkyrie_workloads::{roster, BenchmarkWorkload};
//! use valkyrie_sim::prelude::*;
//!
//! let specs = roster();
//! assert_eq!(specs.len(), 77);
//! let mut machine = Machine::new(MachineConfig::default());
//! let pid = machine.spawn(Box::new(BenchmarkWorkload::new(specs[0].clone())));
//! machine.run_epoch();
//! assert!(machine.is_alive(pid));
//! ```

pub mod adaptive;
pub mod fleet;
pub mod flood;
pub mod multithread;
pub mod roster;
pub mod workload;

pub use adaptive::{best_response, grid_search, refine, BestResponse, ParamSpec};
pub use fleet::{
    fleet_instance, fleet_roster, place_attacks, AttackPlacement, FleetChurn, ServiceArchetype,
    SERVICE_ARCHETYPES,
};
pub use flood::{NoiseFlood, DECOY_PID_BASE};
pub use multithread::{spawn_team, TeamHandle};
pub use roster::{multithreaded_roster, roster, BenchmarkSpec, Family, Suite};
pub use workload::BenchmarkWorkload;
