//! `NoiseFlood`: a deterministic noise-floor DoS workload against the
//! ingest rings.
//!
//! The paper's threat model has the attacker evading the *detector*; PR 5's
//! bounded ingest rings opened a second front — attack the *monitor's
//! plumbing*. A tenant (or a compromised ensemble member) that can publish
//! benign-looking observations can flood the per-shard rings until the
//! overflow policy evicts the real verdicts, masking a concurrent attack
//! inside the dropped window. This module models that attacker: a
//! hash-driven decoy generator that targets **chosen shards** (the ones
//! that own the real attack's pids) with a configurable steady rate,
//! periodic bursts, and decoy-pid churn (fresh pid populations defeat
//! `Coalesce` merging — a brand-new pid can never coalesce, so every decoy
//! costs a queued entry).
//!
//! Everything is a pure function of `(seed, epoch, slot)` via
//! [`mix64`], so flood runs are bit-for-bit reproducible and the
//! experiments' counters can be golden-pinned.
//!
//! # Examples
//!
//! ```
//! use valkyrie_workloads::NoiseFlood;
//! use valkyrie_core::hash::shard_of;
//!
//! let flood = NoiseFlood::new(0xF100D, 8, vec![2, 5]).with_rate(4);
//! let mut decoys = Vec::new();
//! flood.decoys_into(0, &mut decoys);
//! assert_eq!(decoys.len(), 2 * 4 * flood.burst as usize); // epoch 0 bursts
//! for &(pid, _) in &decoys {
//!     let shard = shard_of(pid.0, 8);
//!     assert!(shard == 2 || shard == 5, "decoys hit only targeted shards");
//! }
//! ```

use valkyrie_core::hash::{mix64, shard_of};
use valkyrie_core::{Classification, ProcessId};

/// Decoy pids live far above any real process id so the experiments can
/// tell tenants from noise ([`NoiseFlood::is_decoy`]).
pub const DECOY_PID_BASE: u64 = 1 << 32;

/// A deterministic, hash-driven flooding workload: benign-looking decoy
/// observations aimed at chosen engine shards while a real attack runs
/// underneath. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoiseFlood {
    /// Decoys published per **target shard** per epoch, steady state.
    pub rate: u32,
    /// Rate multiplier on burst epochs.
    pub burst: u32,
    /// Every `burst_period`-th epoch bursts (`0` disables bursts).
    pub burst_period: u64,
    /// The decoy pid population rotates every `churn` epochs (`0` keeps
    /// one fixed population). Fresh pids defeat `Coalesce` merging.
    pub churn: u64,
    /// Decoy pid namespace floor (defaults to [`DECOY_PID_BASE`]).
    pub pid_base: u64,
    /// Stream seed: same seed, same decoys, forever.
    pub seed: u64,
    target_shards: Vec<usize>,
    nshards: usize,
}

impl NoiseFlood {
    /// A flood against `target_shards` of an `nshards`-shard engine, with
    /// the default shape (64/shard/epoch steady, 4x bursts every 16
    /// epochs, pid churn every 8).
    ///
    /// # Panics
    ///
    /// Panics if `nshards` is zero, `target_shards` is empty, or any
    /// target is out of range.
    pub fn new(seed: u64, nshards: usize, target_shards: Vec<usize>) -> Self {
        assert!(nshards > 0, "a flood needs an engine to aim at");
        assert!(!target_shards.is_empty(), "a flood needs target shards");
        assert!(
            target_shards.iter().all(|&s| s < nshards),
            "target shards must exist"
        );
        Self {
            rate: 64,
            burst: 4,
            burst_period: 16,
            churn: 8,
            pid_base: DECOY_PID_BASE,
            seed,
            target_shards,
            nshards,
        }
    }

    /// The flood that masks `attack_pids`: targets exactly the shards that
    /// own them (deduplicated), i.e. the informed attacker who knows the
    /// workspace routing rule [`shard_of`].
    ///
    /// # Panics
    ///
    /// Panics if `nshards` is zero or `attack_pids` is empty.
    pub fn masking(seed: u64, nshards: usize, attack_pids: &[ProcessId]) -> Self {
        let mut targets: Vec<usize> = attack_pids
            .iter()
            .map(|pid| shard_of(pid.0, nshards))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        Self::new(seed, nshards, targets)
    }

    /// Sets the steady per-target-shard rate.
    #[must_use]
    pub fn with_rate(mut self, rate: u32) -> Self {
        self.rate = rate;
        self
    }

    /// Sets the burst multiplier and period (`period == 0` disables).
    #[must_use]
    pub fn with_burst(mut self, burst: u32, period: u64) -> Self {
        self.burst = burst;
        self.burst_period = period;
        self
    }

    /// Sets the decoy-pid churn period (`0` keeps one fixed population).
    #[must_use]
    pub fn with_churn(mut self, churn: u64) -> Self {
        self.churn = churn;
        self
    }

    /// The shards this flood aims at.
    pub fn target_shards(&self) -> &[usize] {
        &self.target_shards
    }

    /// Decoys per target shard at `epoch` (the steady rate, multiplied on
    /// burst epochs).
    pub fn emission(&self, epoch: u64) -> u32 {
        if self.burst_period > 0 && epoch.is_multiple_of(self.burst_period) {
            self.rate.saturating_mul(self.burst.max(1))
        } else {
            self.rate
        }
    }

    /// The decoy-pid generation at `epoch` (bumps every `churn` epochs).
    fn generation(&self, epoch: u64) -> u64 {
        epoch.checked_div(self.churn).unwrap_or(0)
    }

    /// The decoy pid for `(shard, generation, slot)`: a hash-seeded probe
    /// that walks forward until the workspace routing rule lands it on the
    /// target shard (expected `nshards` steps). Pure, so the same
    /// coordinates always name the same decoy.
    fn decoy_pid(&self, shard: usize, generation: u64, slot: u32) -> ProcessId {
        let salt = self.seed
            ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((shard as u64) << 40)
            ^ u64::from(slot);
        let mut candidate = self.pid_base + (mix64(salt) >> 33);
        while shard_of(candidate, self.nshards) != shard {
            candidate += 1;
        }
        ProcessId(candidate)
    }

    /// Appends `epoch`'s decoy observations — [`Classification::Benign`],
    /// that is the whole point — to `out`, cycling over the target shards.
    pub fn decoys_into(&self, epoch: u64, out: &mut Vec<(ProcessId, Classification)>) {
        let emission = self.emission(epoch);
        let generation = self.generation(epoch);
        out.reserve(self.target_shards.len() * emission as usize);
        for &shard in &self.target_shards {
            for slot in 0..emission {
                out.push((
                    self.decoy_pid(shard, generation, slot),
                    Classification::Benign,
                ));
            }
        }
    }

    /// Whether `pid` is one of this flood's decoys (namespace check).
    pub fn is_decoy(&self, pid: ProcessId) -> bool {
        pid.0 >= self.pid_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flood() -> NoiseFlood {
        NoiseFlood::new(0xF100D, 8, vec![1, 6]).with_rate(8)
    }

    #[test]
    #[should_panic(expected = "target shards must exist")]
    fn out_of_range_target_is_rejected() {
        let _ = NoiseFlood::new(1, 4, vec![4]);
    }

    #[test]
    fn decoys_are_deterministic_and_benign() {
        let f = flood();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        f.decoys_into(3, &mut a);
        f.decoys_into(3, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, cls)| cls == Classification::Benign));
        assert!(a.iter().all(|&(pid, _)| f.is_decoy(pid)));
    }

    #[test]
    fn decoys_land_only_on_target_shards() {
        let f = flood();
        let mut out = Vec::new();
        for epoch in 0..24 {
            f.decoys_into(epoch, &mut out);
        }
        for &(pid, _) in &out {
            let shard = shard_of(pid.0, 8);
            assert!(shard == 1 || shard == 6, "decoy on shard {shard}");
        }
    }

    #[test]
    fn bursts_multiply_the_emission() {
        let f = flood().with_burst(4, 16);
        assert_eq!(f.emission(0), 32, "epoch 0 is a burst epoch");
        assert_eq!(f.emission(1), 8);
        assert_eq!(f.emission(16), 32);
        let quiet = flood().with_burst(4, 0);
        assert_eq!(quiet.emission(0), 8, "period 0 disables bursts");
    }

    #[test]
    fn churn_rotates_the_decoy_population() {
        let f = flood().with_churn(4).with_burst(1, 0);
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        f.decoys_into(0, &mut a);
        f.decoys_into(3, &mut b);
        f.decoys_into(4, &mut c);
        assert_eq!(a, b, "same generation, same decoys");
        let pids_a: std::collections::HashSet<u64> = a.iter().map(|&(p, _)| p.0).collect();
        let fresh = c.iter().filter(|&&(p, _)| !pids_a.contains(&p.0)).count();
        assert!(
            fresh * 2 > c.len(),
            "a new generation is mostly fresh pids ({fresh}/{})",
            c.len()
        );
    }

    #[test]
    fn masking_targets_the_attacks_shards() {
        let attacks = [ProcessId(300), ProcessId(301), ProcessId(302)];
        let f = NoiseFlood::masking(7, 4, &attacks);
        let expected: std::collections::HashSet<usize> =
            attacks.iter().map(|p| shard_of(p.0, 4)).collect();
        assert_eq!(
            f.target_shards()
                .iter()
                .copied()
                .collect::<std::collections::HashSet<_>>(),
            expected
        );
    }
}
