//! Barrier-synchronised multi-threaded benchmark teams.
//!
//! The paper reports ~6.7 % average FP slowdowns for 4-thread SPEC CPU2017
//! programs — noticeably worse than single-threaded (≈1 % geometric mean).
//! Two effects cause this, both modelled here:
//!
//! 1. with 4 threads there are 4 inference streams, so the chance that *at
//!    least one* thread is currently flagged is higher;
//! 2. the threads synchronise at barriers, so the team advances at the pace
//!    of its **slowest** thread: throttling one thread stalls all four.

use crate::roster::BenchmarkSpec;
use crate::workload::BenchmarkWorkload;
use std::cell::RefCell;
use std::rc::Rc;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Machine, Workload};
use valkyrie_sim::Pid;

#[derive(Debug)]
struct TeamState {
    /// Per-thread work contributed this epoch (None until the thread ran).
    shares: Vec<Option<f64>>,
    /// Team work completed (in full-speed epochs).
    work_done: f64,
    target: f64,
    completed: bool,
}

/// Handle to a spawned team: the pids of its threads.
#[derive(Debug, Clone)]
pub struct TeamHandle {
    /// Scheduler pids of the team's threads, in thread order.
    pub pids: Vec<Pid>,
    state: Rc<RefCell<TeamState>>,
}

impl TeamHandle {
    /// Team work completed so far, in full-speed epochs.
    pub fn work_done(&self) -> f64 {
        self.state.borrow().work_done
    }

    /// True once the team finished its work.
    pub fn is_completed(&self) -> bool {
        self.state.borrow().completed
    }
}

/// One thread of a multi-threaded benchmark.
#[derive(Debug)]
struct TeamThread {
    inner: BenchmarkWorkload,
    state: Rc<RefCell<TeamState>>,
    idx: usize,
    name: String,
}

impl Workload for TeamThread {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        // A team that finished on a previous epoch reports completion for
        // every thread (threads that hit the final barrier later).
        if self.state.borrow().completed {
            return EpochReport {
                progress: 0.0,
                hpc: self.inner.emit_sample(ctx.rng, 0.05),
                completed: true,
            };
        }
        let share = ctx.cpu_share() * ctx.mem_efficiency;
        let mut st = self.state.borrow_mut();
        st.shares[self.idx] = Some(share);
        // The barrier: when every thread has reported, the team advances by
        // the *minimum* contribution.
        let mut progress = 0.0;
        if st.shares.iter().all(Option::is_some) {
            let min = st
                .shares
                .iter()
                .map(|s| s.expect("all reported"))
                .fold(f64::INFINITY, f64::min);
            st.work_done += min;
            progress = min;
            for s in st.shares.iter_mut() {
                *s = None;
            }
            if st.work_done >= st.target {
                st.completed = true;
            }
        }
        let completed = st.completed;
        drop(st);
        EpochReport {
            progress,
            hpc: self.inner.emit_sample(ctx.rng, ctx.cpu_share().max(0.05)),
            completed,
        }
    }
}

/// Spawns a `spec.threads`-thread team onto the machine; returns its handle.
///
/// # Panics
///
/// Panics if the spec declares fewer than two threads (use
/// [`crate::BenchmarkWorkload`] for single-threaded
/// programs).
pub fn spawn_team(machine: &mut Machine, spec: &BenchmarkSpec) -> TeamHandle {
    assert!(spec.threads >= 2, "a team needs at least two threads");
    let state = Rc::new(RefCell::new(TeamState {
        shares: vec![None; spec.threads],
        work_done: 0.0,
        target: spec.epochs_to_complete as f64,
        completed: false,
    }));
    let mut pids = Vec::with_capacity(spec.threads);
    for idx in 0..spec.threads {
        let thread = TeamThread {
            inner: BenchmarkWorkload::new(spec.clone()),
            state: Rc::clone(&state),
            idx,
            name: format!("{}#t{idx}", spec.name),
        };
        pids.push(machine.spawn(Box::new(thread)));
    }
    TeamHandle { pids, state }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::multithreaded_roster;
    use valkyrie_sim::machine::MachineConfig;

    fn small_spec() -> BenchmarkSpec {
        let mut spec = multithreaded_roster().remove(0);
        spec.epochs_to_complete = 10;
        spec
    }

    #[test]
    fn team_advances_at_full_speed_when_unthrottled() {
        let mut m = Machine::new(MachineConfig::default());
        let team = spawn_team(&mut m, &small_spec());
        // 4 threads on 1 CPU: each gets 1/4 → team advances 0.25/epoch.
        for _ in 0..8 {
            m.run_epoch();
        }
        let w = team.work_done();
        assert!((w - 2.0).abs() < 0.4, "team work {w} after 8 epochs");
    }

    #[test]
    fn throttling_one_thread_stalls_the_team() {
        let mut m = Machine::new(MachineConfig::default());
        let team = spawn_team(&mut m, &small_spec());
        m.set_cpu_quota(team.pids[0], 0.02);
        for _ in 0..8 {
            m.run_epoch();
        }
        // The barrier caps team progress at the slow thread's pace.
        let w = team.work_done();
        assert!(w < 0.5, "team work {w} with one thread at 2%");
    }

    #[test]
    fn team_completes_together() {
        let mut spec = small_spec();
        spec.epochs_to_complete = 2;
        let mut m = Machine::new(MachineConfig::default());
        let team = spawn_team(&mut m, &spec);
        for _ in 0..20 {
            m.run_epoch();
            if team.is_completed() {
                break;
            }
        }
        assert!(team.is_completed());
        // Threads that hit the final barrier earlier observe completion on
        // the next epoch.
        m.run_epoch();
        for pid in &team.pids {
            assert!(m.is_completed(*pid), "{pid} should be completed");
        }
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn single_thread_spec_panics() {
        let mut spec = small_spec();
        spec.threads = 1;
        let mut m = Machine::new(MachineConfig::default());
        let _ = spawn_team(&mut m, &spec);
    }
}
