//! The fleet roster: thousands of benign service processes for
//! machine-scale scenarios.
//!
//! The paper's roster ([`crate::roster()`]) models the 77 SPEC-style
//! benchmarks of Fig. 5a — enough for per-program slowdown studies, but two
//! orders of magnitude short of a production machine. This module extends
//! the roster to **fleet scale**: [`fleet_roster`] generates an arbitrary
//! number of benign service processes (web servers, caches, databases,
//! build jobs, …) with deterministic per-instance running times and
//! false-positive burst propensities, so the multi-tenant experiment and
//! the sharded-engine benches can load a machine with thousands of
//! monitored processes per tick.

use crate::roster::{BenchmarkSpec, Family};
use valkyrie_core::hash::mix64;

/// One archetype of benign fleet service.
///
/// `burst_base` is the archetype's false-positive propensity before
/// per-instance jitter: caches and databases hammer memory and look more
/// like cache attacks through the counters than compute-bound batch jobs
/// do (same modelling as [`crate::roster()`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceArchetype {
    /// Service name (also the generated processes' benchmark name).
    pub name: &'static str,
    /// Resource-behaviour family.
    pub family: Family,
    /// Baseline fraction of epochs flagged by a statistical detector.
    pub burst_base: f64,
    /// Nominal running time in epochs before instance jitter.
    pub epochs_base: u64,
}

/// The service archetypes a fleet instance is drawn from.
pub const SERVICE_ARCHETYPES: [ServiceArchetype; 12] = [
    ServiceArchetype {
        name: "web-frontend",
        family: Family::CpuBound,
        burst_base: 0.004,
        epochs_base: 600,
    },
    ServiceArchetype {
        name: "api-gateway",
        family: Family::CpuBound,
        burst_base: 0.006,
        epochs_base: 560,
    },
    ServiceArchetype {
        name: "kv-cache",
        family: Family::MemoryBound,
        burst_base: 0.070,
        epochs_base: 640,
    },
    ServiceArchetype {
        name: "sql-database",
        family: Family::MemoryBound,
        burst_base: 0.055,
        epochs_base: 680,
    },
    ServiceArchetype {
        name: "message-broker",
        family: Family::MemoryBound,
        burst_base: 0.045,
        epochs_base: 520,
    },
    ServiceArchetype {
        name: "batch-analytics",
        family: Family::CpuBound,
        burst_base: 0.015,
        epochs_base: 420,
    },
    ServiceArchetype {
        name: "ml-inference",
        family: Family::CpuBound,
        burst_base: 0.020,
        epochs_base: 380,
    },
    ServiceArchetype {
        name: "video-transcode",
        family: Family::Graphics,
        burst_base: 0.060,
        epochs_base: 300,
    },
    ServiceArchetype {
        name: "image-render",
        family: Family::Graphics,
        burst_base: 0.075,
        epochs_base: 260,
    },
    ServiceArchetype {
        name: "ci-build",
        family: Family::CpuBound,
        burst_base: 0.010,
        epochs_base: 240,
    },
    ServiceArchetype {
        name: "log-indexer",
        family: Family::MemoryBound,
        burst_base: 0.040,
        epochs_base: 500,
    },
    ServiceArchetype {
        name: "cron-worker",
        family: Family::CpuBound,
        burst_base: 0.0,
        epochs_base: 200,
    },
];

/// Deterministic per-index jitter in `[0, 1)` (the engine tier's SplitMix64
/// finalizer, [`valkyrie_core::hash::mix64`]).
fn index_jitter(i: u64) -> f64 {
    (mix64(i) % 10_000) as f64 / 10_000.0
}

/// The spec of fleet instance `i` (instances cycle through the archetypes
/// with per-instance jitter on runtime and burst propensity).
pub fn fleet_instance(i: usize) -> BenchmarkSpec {
    let archetype = SERVICE_ARCHETYPES[i % SERVICE_ARCHETYPES.len()];
    let jitter = index_jitter(i as u64);
    // Runtime varies ±40 % around the archetype's nominal length; bursts
    // vary ×[0.5, 1.5], with a clean slice of compute-bound instances that
    // are never flagged (mirroring `roster`'s clean programs).
    let epochs = (archetype.epochs_base as f64 * (0.6 + 0.8 * jitter)) as u64;
    let burst = if archetype.family == Family::CpuBound && jitter < 0.35 {
        0.0
    } else {
        archetype.burst_base * (0.5 + jitter)
    };
    BenchmarkSpec::synthetic(archetype.name, archetype.family, epochs.max(1), burst)
}

/// A fleet of `n` benign service processes, deterministic in `n` and stable
/// across runs: `fleet_roster(n)[i]` is always [`fleet_instance`]`(i)`.
pub fn fleet_roster(n: usize) -> Vec<BenchmarkSpec> {
    (0..n).map(fleet_instance).collect()
}

/// Decorrelation tags for the churn model's hash streams, so the draw for
/// "does machine `m` depart at epoch `e`" can never equal the draw for
/// "how many services arrive on machine `m` at epoch `e`".
const STREAM_SERVICE_ARRIVAL: u64 = 0x5E41;
const STREAM_SERVICE_DEPARTURE: u64 = 0x5EDE;
const STREAM_MACHINE_ARRIVAL: u64 = 0x3A41;
const STREAM_MACHINE_DEPARTURE: u64 = 0x3ADE;
const STREAM_ATTACK_MACHINE: u64 = 0xA77C;
const STREAM_ATTACK_EPOCH: u64 = 0xA77E;

/// The fleet's arrival/departure churn model: **deterministic,
/// seed-driven** rates for services joining and leaving machines and for
/// machines joining and leaving the cluster.
///
/// Every decision is a pure hash of `(seed, stream, coordinates)` — no RNG
/// state threads through the simulation, so churn at machine `m`, epoch
/// `e` is identical however many other machines exist, whatever order they
/// are visited in, and across runs and platforms. That is what makes
/// fleet-scale results reproducible *and* partition-invariant: re-grouping
/// machines cannot perturb anyone's churn.
///
/// Rates are expectations per epoch; fractional parts are realised by a
/// per-coordinate Bernoulli draw (a rate of `0.3` yields one arrival in
/// 30 % of epochs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetChurn {
    /// Seed for every churn stream.
    pub seed: u64,
    /// Expected service arrivals per machine per epoch.
    pub service_arrivals_per_epoch: f64,
    /// Probability a live service departs (is drained) in an epoch, on top
    /// of natural completion.
    pub service_departure_prob: f64,
    /// Expected machine boots per epoch, cluster-wide.
    pub machine_arrivals_per_epoch: f64,
    /// Probability a live machine is decommissioned in an epoch.
    pub machine_departure_prob: f64,
}

impl FleetChurn {
    /// A uniform draw in `[0, 1)` for one `(stream, a, b)` coordinate.
    fn draw(&self, stream: u64, a: u64, b: u64) -> f64 {
        let h = mix64(
            self.seed
                ^ mix64(stream)
                ^ mix64(a).rotate_left(17)
                ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Realises a fractional per-epoch rate as a deterministic count.
    fn realise(&self, rate: f64, stream: u64, a: u64, b: u64) -> u32 {
        let whole = rate.max(0.0).floor();
        let frac = rate.max(0.0) - whole;
        whole as u32 + u32::from(self.draw(stream, a, b) < frac)
    }

    /// How many services arrive on machine `machine` at epoch `epoch`.
    pub fn service_arrivals(&self, machine: u32, epoch: u64) -> u32 {
        self.realise(
            self.service_arrivals_per_epoch,
            STREAM_SERVICE_ARRIVAL,
            u64::from(machine),
            epoch,
        )
    }

    /// Whether the service with machine-local pid `pid` on `machine` is
    /// drained at `epoch`.
    pub fn service_departs(&self, machine: u32, pid: u64, epoch: u64) -> bool {
        self.draw(
            STREAM_SERVICE_DEPARTURE,
            u64::from(machine) ^ pid.rotate_left(32),
            epoch,
        ) < self.service_departure_prob
    }

    /// How many machines boot into the cluster at `epoch`.
    pub fn machine_arrivals(&self, epoch: u64) -> u32 {
        self.realise(
            self.machine_arrivals_per_epoch,
            STREAM_MACHINE_ARRIVAL,
            0,
            epoch,
        )
    }

    /// Whether machine `machine` is decommissioned at `epoch`.
    pub fn machine_departs(&self, machine: u32, epoch: u64) -> bool {
        self.draw(STREAM_MACHINE_DEPARTURE, u64::from(machine), epoch) < self.machine_departure_prob
    }
}

/// Where and when one attack lands in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackPlacement {
    /// Index of the host machine in `0..n_machines` (the *initial* fleet;
    /// drivers map indices to machine ids).
    pub machine_index: usize,
    /// Epoch at which the attack process spawns.
    pub arrival_epoch: u64,
    /// Attack instance number (`0..n_attacks`), for per-instance
    /// parameterisation.
    pub instance: usize,
}

/// Places `n_attacks` attacks across an `n_machines` fleet over the first
/// half of a `horizon`-epoch run — deterministic in `seed`, beyond the old
/// staggered model: host machines and arrival epochs are independent
/// hash draws, so attacks cluster and collide the way real campaigns do
/// rather than marching in lockstep. Arrivals stay in the first half so
/// every attack has a full detection window before the run ends.
pub fn place_attacks(
    seed: u64,
    n_attacks: usize,
    n_machines: usize,
    horizon: u64,
) -> Vec<AttackPlacement> {
    assert!(n_machines > 0, "attacks need a fleet to land on");
    let window = (horizon / 2).max(1);
    (0..n_attacks)
        .map(|instance| {
            let machine_draw = mix64(seed ^ mix64(STREAM_ATTACK_MACHINE) ^ instance as u64);
            let epoch_draw = mix64(seed ^ mix64(STREAM_ATTACK_EPOCH) ^ instance as u64);
            AttackPlacement {
                machine_index: (machine_draw % n_machines as u64) as usize,
                arrival_epoch: epoch_draw % window,
                instance,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::Suite;

    #[test]
    fn fleet_roster_has_requested_size() {
        assert_eq!(fleet_roster(0).len(), 0);
        assert_eq!(fleet_roster(1).len(), 1);
        assert_eq!(fleet_roster(5_000).len(), 5_000);
    }

    #[test]
    fn fleet_is_deterministic() {
        assert_eq!(fleet_roster(500), fleet_roster(500));
        assert_eq!(fleet_roster(500)[17], fleet_instance(17));
    }

    #[test]
    fn instances_of_one_archetype_still_vary() {
        let a = fleet_instance(0);
        let b = fleet_instance(SERVICE_ARCHETYPES.len());
        assert_eq!(a.name, b.name);
        assert!(
            a.epochs_to_complete != b.epochs_to_complete || a.burst_prob != b.burst_prob,
            "instances should jitter"
        );
    }

    #[test]
    fn burst_propensities_are_plausible() {
        let fleet = fleet_roster(10_000);
        let mean: f64 = fleet.iter().map(|s| s.burst_prob).sum::<f64>() / fleet.len() as f64;
        // Same ballpark as the paper's ~4 % FP epochs on SPEC.
        assert!(mean > 0.005 && mean < 0.08, "mean burst rate {mean}");
        assert!(fleet.iter().all(|s| (0.0..0.5).contains(&s.burst_prob)));
        let clean = fleet.iter().filter(|s| s.burst_prob == 0.0).count();
        assert!(clean * 10 >= fleet.len(), "only {clean} clean instances");
    }

    #[test]
    fn runtimes_are_positive_and_bounded() {
        for s in fleet_roster(2_000) {
            assert!(s.epochs_to_complete >= 1);
            assert!(s.epochs_to_complete <= 1_000, "{}", s.epochs_to_complete);
            assert_eq!(s.threads, 1);
            assert_eq!(s.suite, Suite::Fleet);
        }
    }

    fn churn() -> FleetChurn {
        FleetChurn {
            seed: 0xFEED,
            service_arrivals_per_epoch: 0.25,
            service_departure_prob: 0.05,
            machine_arrivals_per_epoch: 1.5,
            machine_departure_prob: 0.01,
        }
    }

    #[test]
    fn churn_is_deterministic_and_coordinate_local() {
        let c = churn();
        for machine in 0..50u32 {
            for epoch in 0..20u64 {
                assert_eq!(
                    c.service_arrivals(machine, epoch),
                    c.service_arrivals(machine, epoch)
                );
                assert_eq!(
                    c.machine_departs(machine, epoch),
                    c.machine_departs(machine, epoch)
                );
            }
        }
        // A different seed reshuffles the arrival pattern.
        let other = FleetChurn { seed: 0xBEEF, ..c };
        let pattern: Vec<u32> = (0..2000u32).map(|m| c.service_arrivals(m, 3)).collect();
        let other_pattern: Vec<u32> = (0..2000u32).map(|m| other.service_arrivals(m, 3)).collect();
        assert_ne!(pattern, other_pattern);
        assert!(pattern.iter().sum::<u32>() > 0, "arrivals never fire");
    }

    #[test]
    fn churn_rates_match_expectations() {
        let c = churn();
        let n = 50_000u64;
        let arrivals: u32 = (0..n).map(|e| c.service_arrivals(7, e)).sum();
        let rate = f64::from(arrivals) / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "arrival rate {rate}");
        let departures = (0..n).filter(|&e| c.service_departs(3, 41, e)).count();
        let rate = departures as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "departure rate {rate}");
        let boots: u32 = (0..n).map(|e| c.machine_arrivals(e)).sum();
        let rate = f64::from(boots) / n as f64;
        // Rate 1.5 = 1 guaranteed + Bernoulli(0.5).
        assert!((rate - 1.5).abs() < 0.02, "boot rate {rate}");
        let deaths = (0..n).filter(|&e| c.machine_departs(12, e)).count();
        let rate = deaths as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.003, "death rate {rate}");
    }

    #[test]
    fn churn_streams_are_decorrelated() {
        let c = FleetChurn {
            service_departure_prob: 0.5,
            machine_departure_prob: 0.5,
            ..churn()
        };
        // Same coordinates, different questions → decisions must disagree
        // somewhere (identical streams would lock them together).
        let disagree = (0..1000u64)
            .filter(|&e| c.service_departs(4, 4, e) != c.machine_departs(4, e))
            .count();
        assert!(disagree > 300, "streams look correlated: {disagree}/1000");
    }

    #[test]
    fn attack_placement_is_deterministic_and_in_bounds() {
        let a = place_attacks(0x5EED, 64, 1000, 600);
        assert_eq!(a, place_attacks(0x5EED, 64, 1000, 600));
        assert_eq!(a.len(), 64);
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.instance, i);
            assert!(p.machine_index < 1000);
            assert!(
                p.arrival_epoch < 300,
                "arrival {} past half",
                p.arrival_epoch
            );
        }
        // Hash placement spreads hosts (not all on one machine) and
        // staggers arrivals.
        let hosts: std::collections::HashSet<_> = a.iter().map(|p| p.machine_index).collect();
        assert!(hosts.len() > 32, "only {} distinct hosts", hosts.len());
        let epochs: std::collections::HashSet<_> = a.iter().map(|p| p.arrival_epoch).collect();
        assert!(epochs.len() > 16, "only {} distinct arrivals", epochs.len());
        // And differs under another seed.
        assert_ne!(a, place_attacks(0x0BAD, 64, 1000, 600));
    }
}
