//! The fleet roster: thousands of benign service processes for
//! machine-scale scenarios.
//!
//! The paper's roster ([`crate::roster()`]) models the 77 SPEC-style
//! benchmarks of Fig. 5a — enough for per-program slowdown studies, but two
//! orders of magnitude short of a production machine. This module extends
//! the roster to **fleet scale**: [`fleet_roster`] generates an arbitrary
//! number of benign service processes (web servers, caches, databases,
//! build jobs, …) with deterministic per-instance running times and
//! false-positive burst propensities, so the multi-tenant experiment and
//! the sharded-engine benches can load a machine with thousands of
//! monitored processes per tick.

use crate::roster::{BenchmarkSpec, Family, Suite};

/// One archetype of benign fleet service.
///
/// `burst_base` is the archetype's false-positive propensity before
/// per-instance jitter: caches and databases hammer memory and look more
/// like cache attacks through the counters than compute-bound batch jobs
/// do (same modelling as [`crate::roster()`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceArchetype {
    /// Service name (also the generated processes' benchmark name).
    pub name: &'static str,
    /// Resource-behaviour family.
    pub family: Family,
    /// Baseline fraction of epochs flagged by a statistical detector.
    pub burst_base: f64,
    /// Nominal running time in epochs before instance jitter.
    pub epochs_base: u64,
}

/// The service archetypes a fleet instance is drawn from.
pub const SERVICE_ARCHETYPES: [ServiceArchetype; 12] = [
    ServiceArchetype {
        name: "web-frontend",
        family: Family::CpuBound,
        burst_base: 0.004,
        epochs_base: 600,
    },
    ServiceArchetype {
        name: "api-gateway",
        family: Family::CpuBound,
        burst_base: 0.006,
        epochs_base: 560,
    },
    ServiceArchetype {
        name: "kv-cache",
        family: Family::MemoryBound,
        burst_base: 0.070,
        epochs_base: 640,
    },
    ServiceArchetype {
        name: "sql-database",
        family: Family::MemoryBound,
        burst_base: 0.055,
        epochs_base: 680,
    },
    ServiceArchetype {
        name: "message-broker",
        family: Family::MemoryBound,
        burst_base: 0.045,
        epochs_base: 520,
    },
    ServiceArchetype {
        name: "batch-analytics",
        family: Family::CpuBound,
        burst_base: 0.015,
        epochs_base: 420,
    },
    ServiceArchetype {
        name: "ml-inference",
        family: Family::CpuBound,
        burst_base: 0.020,
        epochs_base: 380,
    },
    ServiceArchetype {
        name: "video-transcode",
        family: Family::Graphics,
        burst_base: 0.060,
        epochs_base: 300,
    },
    ServiceArchetype {
        name: "image-render",
        family: Family::Graphics,
        burst_base: 0.075,
        epochs_base: 260,
    },
    ServiceArchetype {
        name: "ci-build",
        family: Family::CpuBound,
        burst_base: 0.010,
        epochs_base: 240,
    },
    ServiceArchetype {
        name: "log-indexer",
        family: Family::MemoryBound,
        burst_base: 0.040,
        epochs_base: 500,
    },
    ServiceArchetype {
        name: "cron-worker",
        family: Family::CpuBound,
        burst_base: 0.0,
        epochs_base: 200,
    },
];

/// Deterministic per-index jitter in `[0, 1)` (the engine tier's SplitMix64
/// finalizer, [`valkyrie_core::hash::mix64`]).
fn index_jitter(i: u64) -> f64 {
    (valkyrie_core::hash::mix64(i) % 10_000) as f64 / 10_000.0
}

/// The spec of fleet instance `i` (instances cycle through the archetypes
/// with per-instance jitter on runtime and burst propensity).
pub fn fleet_instance(i: usize) -> BenchmarkSpec {
    let archetype = SERVICE_ARCHETYPES[i % SERVICE_ARCHETYPES.len()];
    let jitter = index_jitter(i as u64);
    // Runtime varies ±40 % around the archetype's nominal length; bursts
    // vary ×[0.5, 1.5], with a clean slice of compute-bound instances that
    // are never flagged (mirroring `roster`'s clean programs).
    let epochs = (archetype.epochs_base as f64 * (0.6 + 0.8 * jitter)) as u64;
    let burst = if archetype.family == Family::CpuBound && jitter < 0.35 {
        0.0
    } else {
        archetype.burst_base * (0.5 + jitter)
    };
    BenchmarkSpec {
        name: archetype.name,
        suite: Suite::Fleet,
        family: archetype.family,
        epochs_to_complete: epochs.max(1),
        burst_prob: burst,
        threads: 1,
    }
}

/// A fleet of `n` benign service processes, deterministic in `n` and stable
/// across runs: `fleet_roster(n)[i]` is always [`fleet_instance`]`(i)`.
pub fn fleet_roster(n: usize) -> Vec<BenchmarkSpec> {
    (0..n).map(fleet_instance).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_roster_has_requested_size() {
        assert_eq!(fleet_roster(0).len(), 0);
        assert_eq!(fleet_roster(1).len(), 1);
        assert_eq!(fleet_roster(5_000).len(), 5_000);
    }

    #[test]
    fn fleet_is_deterministic() {
        assert_eq!(fleet_roster(500), fleet_roster(500));
        assert_eq!(fleet_roster(500)[17], fleet_instance(17));
    }

    #[test]
    fn instances_of_one_archetype_still_vary() {
        let a = fleet_instance(0);
        let b = fleet_instance(SERVICE_ARCHETYPES.len());
        assert_eq!(a.name, b.name);
        assert!(
            a.epochs_to_complete != b.epochs_to_complete || a.burst_prob != b.burst_prob,
            "instances should jitter"
        );
    }

    #[test]
    fn burst_propensities_are_plausible() {
        let fleet = fleet_roster(10_000);
        let mean: f64 = fleet.iter().map(|s| s.burst_prob).sum::<f64>() / fleet.len() as f64;
        // Same ballpark as the paper's ~4 % FP epochs on SPEC.
        assert!(mean > 0.005 && mean < 0.08, "mean burst rate {mean}");
        assert!(fleet.iter().all(|s| (0.0..0.5).contains(&s.burst_prob)));
        let clean = fleet.iter().filter(|s| s.burst_prob == 0.0).count();
        assert!(clean * 10 >= fleet.len(), "only {clean} clean instances");
    }

    #[test]
    fn runtimes_are_positive_and_bounded() {
        for s in fleet_roster(2_000) {
            assert!(s.epochs_to_complete >= 1);
            assert!(s.epochs_to_complete <= 1_000, "{}", s.epochs_to_complete);
            assert_eq!(s.threads, 1);
            assert_eq!(s.suite, Suite::Fleet);
        }
    }
}
