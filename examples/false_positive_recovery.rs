//! False-positive recovery: the paper's `blender_r` scenario — a benign
//! 3D-rendering benchmark misclassified in ~30 % of epochs survives with a
//! bounded slowdown instead of being terminated.
//!
//! Run with: `cargo run --release --example false_positive_recovery`

use valkyrie::core::prelude::*;
use valkyrie::detect::{StatisticalDetector, VotingDetector};
use valkyrie::experiments::fig4::benign_baseline;
use valkyrie::experiments::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use valkyrie::sim::machine::{Machine, MachineConfig};
use valkyrie::workloads::{roster, BenchmarkWorkload};

fn main() -> Result<(), ValkyrieError> {
    let n_star = 30;
    let mut spec = roster()
        .into_iter()
        .find(|s| s.name == "blender_r")
        .expect("roster contains blender_r");
    spec.epochs_to_complete = 300;
    let baseline = spec.epochs_to_complete;

    let engine = EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(true) // Algorithm 1's outer loop: keep watching after a benign verdict
        .build()?;
    let detector = VotingDetector::new(
        StatisticalDetector::fit_normalized(&benign_baseline(11), 4.0),
        n_star,
    );
    let machine = Machine::new(MachineConfig::default());
    let mut run = AugmentedRun::new(
        machine,
        engine,
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: n_star as usize * 3,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid = run
        .machine_mut()
        .spawn(Box::new(BenchmarkWorkload::new(spec)));
    run.watch(pid);

    let mut epochs = 0u64;
    let mut throttled_epochs = 0u64;
    while !run.machine().is_completed(pid) && epochs < baseline * 8 {
        run.step();
        epochs += 1;
        if run.history(pid).last().is_some_and(|r| r.cpu_share < 1.0) {
            throttled_epochs += 1;
        }
        assert!(run.machine().is_alive(pid), "benign program must survive");
    }

    let slowdown = (epochs as f64 / baseline as f64 - 1.0) * 100.0;
    println!("blender_r: misclassified in ~30% of epochs");
    println!("  nominal runtime : {baseline} epochs");
    println!("  with Valkyrie   : {epochs} epochs ({throttled_epochs} under throttle)");
    println!("  slowdown        : {slowdown:.1}% (paper reports 25%)");
    println!("  outcome         : completed — never terminated");
    println!(
        "\nWith a termination-based response the same detector would have\n\
         killed blender_r with probability ~0.3 per verdict."
    );
    Ok(())
}
