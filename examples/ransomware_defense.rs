//! Ransomware defense end-to-end: a simulated machine with a victim
//! filesystem, an HPC detector, and Valkyrie throttling CPU + file-access
//! rate until termination.
//!
//! Run with: `cargo run --release --example ransomware_defense`

use rand::rngs::StdRng;
use rand::SeedableRng;
use valkyrie::attacks::ransomware::Ransomware;
use valkyrie::core::prelude::*;
use valkyrie::detect::StatisticalDetector;
use valkyrie::experiments::fig4::benign_baseline;
use valkyrie::experiments::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use valkyrie::sim::fs::SimFs;
use valkyrie::sim::machine::{Machine, MachineConfig};

fn main() -> Result<(), ValkyrieError> {
    // A victim filesystem: 200k documents of ~1 MiB.
    let mut machine = Machine::new(MachineConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    machine.set_filesystem(SimFs::generate(&mut rng, 200_000, 1 << 20));

    // The paper's ransomware case study: cgroup actuators on CPU and the
    // file-access rate, behind an HPC detector.
    let engine = EngineConfig::builder()
        .measurements_required(20)
        .actuator_part(ShareActuator::cpu_percent_point(0.10, 0.01))
        .actuator_part(ShareActuator::fs_halving(1.0 / 128.0))
        .build()?;
    let detector = StatisticalDetector::fit_normalized(&benign_baseline(7), 3.5);
    let mut run = AugmentedRun::new(
        machine,
        engine,
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: 40,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );

    let pid = run.machine_mut().spawn(Box::new(Ransomware::default()));
    run.watch(pid);

    println!("epoch | state       | cpu%  | fs%   | encrypted this epoch");
    let mut total = 0.0;
    for epoch in 1..=25 {
        let reports = run.step();
        let progress = reports.get(&pid).map_or(0.0, |r| r.progress);
        total += progress;
        let rec = run.history(pid).last().copied();
        if let Some(rec) = rec {
            println!(
                "{epoch:>5} | {:<11} | {:>4.0}% | {:>4.1}% | {:>8.1} KB",
                rec.state.to_string(),
                rec.cpu_share * 100.0,
                run.history(pid).last().map_or(1.0, |_| rec.cpu_share) * 100.0,
                progress / 1000.0,
            );
        }
        if !run.machine().is_alive(pid) {
            println!("ransomware terminated at epoch {epoch}");
            break;
        }
    }
    println!(
        "\ntotal encrypted before termination: {:.2} MB (unthrottled would be ~{:.0} MB)",
        total / 1e6,
        11.67 * 2.5
    );
    println!(
        "files lost: {} of {}",
        run.machine().filesystem().encrypted_files(),
        run.machine().filesystem().len()
    );
    Ok(())
}
