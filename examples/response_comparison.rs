//! Quantifying Table I: replay every post-detection response strategy from
//! the literature on identical detector traces and compare them against the
//! paper's two requirements — R1 (throttle attacks) and R2 (spare falsely
//! classified benign programs).
//!
//! Run with: `cargo run --example response_comparison`

use valkyrie::experiments::responses::{run, ResponsesConfig};

fn main() {
    let cfg = ResponsesConfig {
        benign_trials: 20,
        ..ResponsesConfig::default()
    };
    let result = run(&cfg);
    println!("{}", result.report);

    let valkyrie = result
        .rows
        .iter()
        .find(|r| r.policy == "valkyrie")
        .expect("valkyrie row is always present");
    let dominated = result
        .rows
        .iter()
        .filter(|r| r.policy != "valkyrie")
        .all(|r| {
            r.attack_progress_pct > valkyrie.attack_progress_pct
                || r.benign_killed_pct > valkyrie.benign_killed_pct
                || r.benign_slowdown_pct > valkyrie.benign_slowdown_pct
        });
    println!(
        "valkyrie is {} by any single baseline on all three metrics",
        if dominated {
            "not dominated"
        } else {
            "DOMINATED"
        }
    );
}
