//! Two-level detection (Section VII): a cheap statistical screen runs every
//! epoch, and an expensive majority-vote model is consulted only on screened
//! epochs. The pipeline's verdicts feed Valkyrie like any single detector,
//! while the confirmer runs on a fraction of the epochs.
//!
//! Run with: `cargo run --example ensemble_detection`

use valkyrie::core::prelude::*;
use valkyrie::detect::{
    CombinationRule, Detector, EnsembleDetector, MultiLevelDetector, ScriptedDetector,
};
use valkyrie::hpc::SampleWindow;

fn main() -> Result<(), ValkyrieError> {
    // A cheap screen that misfires on one epoch in four (high FP rate), and
    // an expert panel that is right most of the time. Scripted detectors
    // stand in for the statistical/ML detectors so the run is reproducible;
    // swap in `StatisticalDetector` / `MajorityVoteDetector` for live HPC
    // streams.
    let screen = ScriptedDetector::cycle(vec![
        Classification::Malicious,
        Classification::Benign,
        Classification::Benign,
        Classification::Benign,
    ]);
    let panel = EnsembleDetector::new(
        "expert-panel",
        vec![
            Box::new(ScriptedDetector::constant(Classification::Benign)),
            Box::new(ScriptedDetector::constant(Classification::Benign)),
            Box::new(ScriptedDetector::cycle(vec![
                Classification::Malicious,
                Classification::Benign,
            ])),
        ],
        CombinationRule::Majority,
    );
    let mut pipeline = MultiLevelDetector::new("two-level", Box::new(screen), Box::new(panel));

    let config = EngineConfig::builder()
        .measurements_required(20)
        .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
        .build()?;
    let mut engine = ValkyrieEngine::new(config);

    // Drive a benign process for 40 epochs through the pipeline + engine.
    let pid = ProcessId(1);
    let window = SampleWindow::new(8);
    for _ in 0..40 {
        let inference = pipeline.infer(pid, &window);
        let resp = engine.observe(pid, inference);
        assert_ne!(resp.action, Action::Terminate, "benign must survive");
    }

    println!(
        "pipeline served {} inferences; the expensive panel ran only {} times ({:.0}%)",
        pipeline.inferences(),
        pipeline.confirmations(),
        pipeline.confirmation_rate() * 100.0
    );
    println!(
        "final state: {:?}, threat {:.1}, cpu share {:.0}%",
        engine.state(pid).expect("tracked"),
        engine.threat(pid).expect("tracked").value(),
        engine.resources(pid).expect("tracked").cpu * 100.0
    );
    Ok(())
}
