//! Covert-channel throttling: a CJAG-style LLC covert channel runs against
//! the cache model while Valkyrie's Eq. 8 scheduler actuator starves it.
//!
//! Run with: `cargo run --release --example covert_channel_throttling`

use valkyrie::attacks::channels::{ChannelConfig, CovertChannel, Medium};
use valkyrie::core::prelude::*;
use valkyrie::detect::StatisticalDetector;
use valkyrie::experiments::fig4::{benign_baseline, spawn_background};
use valkyrie::experiments::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use valkyrie::sim::machine::{Machine, MachineConfig};

fn main() -> Result<(), ValkyrieError> {
    let engine = EngineConfig::builder()
        .measurements_required(25)
        .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
        .build()?;
    let detector = StatisticalDetector::fit_normalized(&benign_baseline(3), 3.5);
    let machine = Machine::new(MachineConfig::default());
    let mut run = AugmentedRun::new(
        machine,
        engine,
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::SchedulerWeight,
            window: 50,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );

    // The sender/receiver pair plus an innocent process they contend with.
    let channel = CovertChannel::new(Medium::llc(), ChannelConfig::cjag(2));
    let pid = run.machine_mut().spawn(Box::new(channel));
    spawn_background(run.machine_mut());
    run.watch(pid);

    println!("epoch | state       | cpu%  | bits transmitted (cumulative)");
    for epoch in 1..=40 {
        run.step();
        let bits = run
            .machine()
            .workload_as::<CovertChannel>(pid)
            .map_or(0, CovertChannel::bits_transmitted);
        if let Some(rec) = run.history(pid).last() {
            println!(
                "{epoch:>5} | {:<11} | {:>4.1}% | {bits}",
                rec.state.to_string(),
                rec.cpu_share * 100.0
            );
        }
        if !run.machine().is_alive(pid) {
            println!("covert channel terminated at epoch {epoch} with {bits} bits leaked");
            break;
        }
    }
    Ok(())
}
