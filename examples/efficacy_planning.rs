//! Efficacy planning: measure a detector's F1/FPR as a function of the
//! number of measurements (Fig. 1), then let a user specification choose
//! `N*` — the number of measurements Valkyrie waits for before allowing
//! termination.
//!
//! Run with: `cargo run --release --example efficacy_planning`

use valkyrie::core::prelude::*;
use valkyrie::experiments::fig1::{run, Fig1Config};

fn main() -> Result<(), ValkyrieError> {
    // Train the paper's four detector families and measure their efficacy
    // curves on the ransomware-vs-benign corpus (a scaled-down Fig. 1).
    let result = run(&Fig1Config {
        ransomware: 30,
        benign: 34,
        trace_len: 60,
        grid_max: 59,
        train_cap: 2500,
        seed: 0xE1,
    });

    println!("measured efficacy curves (XGBoost detector):");
    for p in result.xgboost.points().iter().step_by(4) {
        println!(
            "  n = {:>2}: F1 = {:.3}, FPR = {:.3}",
            p.measurements, p.f1, p.fpr
        );
    }

    // Three deployments with different requirements (Section IV-C):
    let deployments = [
        (
            "critical system (terminate early)",
            EfficacySpec::f1_at_least(0.80),
        ),
        ("general purpose", EfficacySpec::f1_at_least(0.90)),
        (
            "FP-sensitive batch cluster",
            EfficacySpec::f1_at_least(0.90).and_fpr_at_most(0.10),
        ),
    ];
    println!("\nN* per deployment:");
    for (name, spec) in deployments {
        match result.xgboost.measurements_required(&spec) {
            Ok(n) => {
                let config = EngineConfig::builder()
                    .efficacy(&result.xgboost, &spec)?
                    .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
                    .build()?;
                println!(
                    "  {name}: {spec} -> N* = {n} measurements ({:.1} s at 100 ms/epoch); engine configured with N* = {}",
                    n as f64 / 10.0,
                    config.measurements_required()
                );
            }
            Err(e) => println!("  {name}: {spec} -> unreachable ({e})"),
        }
    }
    Ok(())
}
