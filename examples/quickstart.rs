//! Quickstart: augment a detector with Valkyrie and watch a cryptominer get
//! throttled and terminated while a falsely-flagged benign program recovers.
//!
//! Run with: `cargo run --example quickstart`

use valkyrie::core::prelude::*;

fn main() -> Result<(), ValkyrieError> {
    // 1. The user specifies the detection efficacy their deployment needs;
    //    Valkyrie derives N* from the detector's measured efficacy curve.
    let curve = EfficacyCurve::new(vec![
        EfficacyPoint {
            measurements: 5,
            f1: 0.70,
            fpr: 0.35,
        },
        EfficacyPoint {
            measurements: 15,
            f1: 0.86,
            fpr: 0.18,
        },
        EfficacyPoint {
            measurements: 23,
            f1: 0.92,
            fpr: 0.11,
        },
        EfficacyPoint {
            measurements: 50,
            f1: 0.95,
            fpr: 0.07,
        },
    ])?;
    let spec = EfficacySpec::f1_at_least(0.9);
    let config = EngineConfig::builder()
        .efficacy(&curve, &spec)?
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
        .build()?;
    println!(
        "user asked for {spec}; detector needs N* = {} measurements\n",
        config.measurements_required()
    );

    let mut engine = ValkyrieEngine::new(config);

    // 2. A cryptominer that the detector flags every epoch.
    let miner = ProcessId(100);
    println!("== cryptominer (flagged every epoch) ==");
    for epoch in 1.. {
        let resp = engine.observe(miner, Classification::Malicious);
        println!(
            "epoch {epoch:>2}: state={:<11} threat={:>5.1} cpu-share={:>5.1}% action={:?}",
            resp.state.to_string(),
            resp.threat.value(),
            resp.resources.cpu * 100.0,
            resp.action
        );
        if resp.action == Action::Terminate {
            break;
        }
    }

    // 3. A benign program falsely flagged for three epochs, then cleared.
    let benign = ProcessId(200);
    println!("\n== benign program (3 false positives, then cleared) ==");
    for epoch in 1..=28 {
        let classification = if epoch <= 3 {
            Classification::Malicious
        } else {
            Classification::Benign
        };
        let resp = engine.observe(benign, classification);
        if epoch <= 8 || epoch % 8 == 0 {
            println!(
                "epoch {epoch:>2}: state={:<11} threat={:>5.1} cpu-share={:>5.1}% action={:?}",
                resp.state.to_string(),
                resp.threat.value(),
                resp.resources.cpu * 100.0,
                resp.action
            );
        }
        assert_ne!(resp.action, Action::Terminate, "benign must survive");
    }
    println!("\nbenign program finished with full resources restored");
    Ok(())
}
