//! Adaptive attacker: can duty-cycling beat the response framework?
//!
//! An attacker that knows Valkyrie is deployed can pause whenever it feels
//! throttled, wait for the compensation mechanism to restore its resources,
//! and resume. This example replays four strategies against the same
//! configuration and shows why evasion does not pay: dormant epochs still
//! count toward `N*`, so the terminable verdict arrives on schedule, and
//! every epoch spent hiding is progress forfeited.
//!
//! Run with: `cargo run --example adaptive_attacker`

use valkyrie::core::evasion::{
    expected_terminable_progress, run_evasion, AttackerStrategy, DetectorModel, EvasionScenario,
};
use valkyrie::core::prelude::*;

fn main() -> Result<(), ValkyrieError> {
    let config = EngineConfig::builder()
        .measurements_required(30)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .build()?;

    // A realistic detector: right 90% of the time while the attack works,
    // and wrong 4% of the time while it hides.
    let detector = DetectorModel::new(0.90, 0.04)?;
    let horizon = 120;

    println!("N* = 30, horizon = {horizon} epochs, detector TPR 90% / FPR 4%\n");
    println!(
        "{:<34} {:>9} {:>10} {:>9} {:>11}",
        "strategy", "progress", "unimpeded", "slowdown", "killed at"
    );
    for (name, strategy) in [
        ("always active", AttackerStrategy::AlwaysActive),
        (
            "duty cycle: 1 on / 3 off",
            AttackerStrategy::DutyCycle {
                active: 1,
                dormant: 3,
            },
        ),
        (
            "sprint 15 epochs, then hide",
            AttackerStrategy::Sprint { active_epochs: 15 },
        ),
        (
            "sawtooth: resume at 70% share",
            AttackerStrategy::ThreatAdaptive { resume_above: 0.70 },
        ),
    ] {
        let scenario = EvasionScenario::new(strategy, detector, horizon).with_seed(7);
        let out = run_evasion(&config, &scenario);
        println!(
            "{:<34} {:>9.1} {:>10.1} {:>8.1}% {:>11}",
            name,
            out.progress,
            out.unimpeded,
            out.slowdown_percent(),
            out.terminated_at
                .map_or("survived".to_string(), |e| format!("epoch {e}")),
        );
    }

    println!(
        "\nAfter N*, every active epoch risks termination: with TPR p the\n\
         expected remaining progress is (1-p)/p unthrottled epochs:"
    );
    for tpr in [0.5, 0.9, 0.99] {
        println!(
            "  TPR {:>3.0}% -> {:>5.2} epochs",
            tpr * 100.0,
            expected_terminable_progress(tpr)
        );
    }
    Ok(())
}
