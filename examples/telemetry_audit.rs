//! Response audit: record every engine response in a [`ResponseLog`] and
//! print the per-process forensic summary an operator would read after an
//! incident — who was throttled, for how long, who recovered, who was
//! terminated, and what the false positives cost (R2 accounting).
//!
//! Run with: `cargo run --example telemetry_audit`

use valkyrie::core::prelude::*;
use valkyrie::core::telemetry::ResponseLog;

fn main() -> Result<(), ValkyrieError> {
    let config = EngineConfig::builder()
        .measurements_required(12)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .build()?;
    let mut engine = ValkyrieEngine::new(config);
    let mut log = ResponseLog::new();

    // pid 1: an attack, flagged every epoch.
    // pid 2: a benign process with a burst of three false positives.
    // pid 3: a clean benign process, never flagged.
    let attack = ProcessId(1);
    let bursty = ProcessId(2);
    let clean = ProcessId(3);
    for epoch in 1..=20u64 {
        let r = engine.observe(attack, Classification::Malicious);
        log.record(epoch, &r);
        let r = engine.observe(
            bursty,
            if (4..=6).contains(&epoch) {
                Classification::Malicious
            } else {
                Classification::Benign
            },
        );
        log.record(epoch, &r);
        let r = engine.observe(clean, Classification::Benign);
        log.record(epoch, &r);
    }

    println!("{}", log.render_summary());
    println!(
        "{} of {} processes terminated; {} responses recorded",
        log.terminations(),
        log.processes(),
        log.len()
    );

    let bursty_summary = log.summary(bursty).expect("recorded");
    println!(
        "\npid 2 (false-positive burst): throttled {} epochs, {} restores, \
         estimated slowdown {:.1}%",
        bursty_summary.throttled_epochs,
        bursty_summary.restores,
        bursty_summary.slowdown_percent()
    );
    assert!(!bursty_summary.terminated, "benign process must survive");
    Ok(())
}
