//! Offline stand-in for the crates.io `rand` crate (0.8 API surface).
//!
//! The build environment for this reproduction has no network access, so the
//! workspace vendors the subset of `rand` it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and [`rngs::StdRng`], backed by a
//! deterministic xoshiro256++ generator seeded via splitmix64 — the same
//! construction the real `rand_xoshiro` crate uses.  Streams are *not*
//! bit-compatible with upstream `StdRng` (which is ChaCha12); everything in
//! this workspace only relies on determinism-per-seed, not on a specific
//! stream.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// Types that can be produced uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Two's-complement add: the offset may exceed the signed
                // maximum for ranges spanning more than half the domain.
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f64::generate(rng) * (self.end - self.start);
        // Rounding can land exactly on the excluded bound when the span is
        // small relative to the endpoints' magnitude; keep the range open.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f64::generate(rng) * (end - start)
    }
}

/// The user-facing convenience trait, mirroring `rand::Rng` (0.8).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::generate(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirror of `rand::SeedableRng`, with the `seed_from_u64` constructor the
/// workspace uses everywhere.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (public-domain reference
    /// algorithm by Blackman & Vigna), seeded through splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn f64_range_excludes_upper_bound_despite_rounding() {
        let mut rng = StdRng::seed_from_u64(5);
        let (start, end) = (1e16, 1e16 + 2.0);
        for _ in 0..1_000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "{v} not in [{start}, {end})");
        }
    }

    #[test]
    fn gen_range_handles_full_signed_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..1_000 {
            let v = rng.gen_range(i64::MIN..i64::MAX);
            saw_negative |= v < 0;
            saw_positive |= v > 0;
            let w = rng.gen_range(i8::MIN..=i8::MAX);
            assert!((i8::MIN..=i8::MAX).contains(&w));
        }
        assert!(saw_negative && saw_positive);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn fill_covers_unaligned_tails() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
