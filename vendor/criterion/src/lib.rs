//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the API surface the `valkyrie-bench` benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`], [`criterion_group!`]
//! and [`criterion_main!`] — with a deliberately small measurement loop: a
//! short warm-up, then timed batches until the measurement budget is spent,
//! reporting the best batch-mean iteration time plus the mean and relative
//! standard deviation across batches (so noisy numbers are visibly noisy).
//! No plots or baseline comparison; the goal is that `cargo bench` runs and
//! prints stable, comparable numbers without network access.
//!
//! The default budgets (50 ms warm-up / 200 ms measurement per benchmark)
//! can be overridden with the `VALKYRIE_BENCH_WARMUP_MS` and
//! `VALKYRIE_BENCH_MEASUREMENT_MS` environment variables — CI's bench smoke
//! job shrinks them so the benches compile and execute in seconds; explicit
//! `measurement_time`/`sample_size` calls still win over the environment.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

pub mod measurement {
    /// Marker for wall-clock measurement (the only kind supported).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Statistics of one [`Bencher::iter`] call across its timed batches.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Best (lowest) batch-mean time per iteration.
    pub best: Duration,
    /// Mean of the batch means.
    pub mean: Duration,
    /// Relative standard deviation of the batch means, in percent of the
    /// mean (0 when fewer than two batches ran).
    pub rsd_pct: f64,
    /// Number of timed batches.
    pub batches: u32,
}

fn stats_of(batch_means: &[Duration], fallback: Duration) -> SampleStats {
    if batch_means.is_empty() {
        return SampleStats {
            best: fallback,
            mean: fallback,
            rsd_pct: 0.0,
            batches: 0,
        };
    }
    let best = *batch_means.iter().min().expect("non-empty");
    let nanos: Vec<f64> = batch_means.iter().map(|d| d.as_nanos() as f64).collect();
    let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
    let rsd_pct = if nanos.len() < 2 || mean <= 0.0 {
        0.0
    } else {
        let var = nanos.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nanos.len() - 1) as f64;
        100.0 * var.sqrt() / mean
    };
    SampleStats {
        best,
        mean: Duration::from_nanos(mean as u64),
        rsd_pct,
        batches: batch_means.len() as u32,
    }
}

/// Per-benchmark timing driver handed to the `|b| ...` closure.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    samples: &'a mut Vec<SampleStats>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly, recording per-iteration timing statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, also used to size the timed batches.  Always run at
        // least one iteration: with a zero warm-up budget, `per_iter`
        // would otherwise be zero and the batch clamp maximal — a
        // million-iteration first batch for an arbitrarily slow routine.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let batch = ((Duration::from_millis(5).as_nanos().max(1) / per_iter.as_nanos().max(1))
            as u64)
            .clamp(1, 1_000_000);

        let budget_start = Instant::now();
        let mut batch_means = Vec::new();
        while budget_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            batch_means.push(t0.elapsed().checked_div(batch as u32).unwrap_or_default());
        }
        self.samples.push(stats_of(&batch_means, per_iter));
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

fn env_budget_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default_ms),
    )
}

impl Default for Criterion {
    fn default() -> Self {
        // Far smaller budgets than upstream (3s warm-up / 5s measurement):
        // `cargo bench` over the bench binaries should finish in minutes.
        // CI's bench smoke job shrinks the budgets further via the
        // environment.
        Criterion {
            warm_up: env_budget_ms("VALKYRIE_BENCH_WARMUP_MS", 50),
            measurement: env_budget_ms("VALKYRIE_BENCH_MEASUREMENT_MS", 200),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(id, self.warm_up, self.measurement, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: self.warm_up,
            default_measurement: self.measurement,
            explicit_measurement: None,
            sample_budget: None,
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    warm_up: Duration,
    default_measurement: Duration,
    explicit_measurement: Option<Duration>,
    sample_budget: Option<Duration>,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Upstream scales its statistics by sample count; here fewer samples
    /// just means a proportionally smaller measurement budget.  Recorded
    /// separately from [`Self::measurement_time`] so the two calls are
    /// commutative: an explicit measurement time always wins.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = n.max(1) as u32;
        self.sample_budget = Some(Duration::from_millis(20).saturating_mul(n));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.explicit_measurement = Some(d);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let measurement = self
            .explicit_measurement
            .or(self.sample_budget)
            .unwrap_or(self.default_measurement);
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.warm_up, measurement, f);
        self
    }

    pub fn finish(self) {}
}

/// `cargo bench <name>` passes `<name>` through to the bench binary
/// (`harness = false`); mirror upstream's substring filtering.
fn matches_filter(id: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()))
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    if !matches_filter(id) {
        return;
    }
    let mut samples = Vec::new();
    let mut b = Bencher {
        warm_up,
        measurement,
        samples: &mut samples,
    };
    f(&mut b);
    match samples.last() {
        Some(s) => println!(
            "bench: {id:<55} {:>12}/iter  (mean {} ±{:.1}%, {} batches)",
            format_duration(s.best),
            format_duration(s.mean),
            s.rsd_pct,
            s.batches
        ),
        // The closure set state up but never called `iter`.
        None => println!("bench: {id:<55} {:>12}", "no samples"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// `criterion_group!(name, bench_fn, ...)` — a runner invoking each bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_sample() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
        };
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn stats_report_best_mean_and_spread() {
        let s = stats_of(
            &[
                Duration::from_nanos(100),
                Duration::from_nanos(110),
                Duration::from_nanos(90),
            ],
            Duration::ZERO,
        );
        assert_eq!(s.best, Duration::from_nanos(90));
        assert_eq!(s.mean, Duration::from_nanos(100));
        assert_eq!(s.batches, 3);
        assert!(s.rsd_pct > 9.0 && s.rsd_pct < 11.0, "{}", s.rsd_pct);
    }

    #[test]
    fn stats_fall_back_when_no_batch_completed() {
        let s = stats_of(&[], Duration::from_nanos(42));
        assert_eq!(s.best, Duration::from_nanos(42));
        assert_eq!(s.mean, Duration::from_nanos(42));
        assert_eq!(s.rsd_pct, 0.0);
        assert_eq!(s.batches, 0);
    }

    #[test]
    fn single_batch_has_zero_spread() {
        let s = stats_of(&[Duration::from_micros(7)], Duration::ZERO);
        assert_eq!(s.best, s.mean);
        assert_eq!(s.rsd_pct, 0.0);
        assert_eq!(s.batches, 1);
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
