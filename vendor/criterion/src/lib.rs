//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the API surface the `valkyrie-bench` benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`], [`criterion_group!`]
//! and [`criterion_main!`] — with a deliberately small measurement loop: a
//! short warm-up, then timed batches until the measurement budget is spent,
//! reporting the best batch-mean iteration time plus the mean and relative
//! standard deviation across batches (so noisy numbers are visibly noisy).
//! No plots or baseline comparison; the goal is that `cargo bench` runs and
//! prints stable, comparable numbers without network access.
//!
//! The default budgets (50 ms warm-up / 200 ms measurement per benchmark)
//! can be overridden with the `VALKYRIE_BENCH_WARMUP_MS` and
//! `VALKYRIE_BENCH_MEASUREMENT_MS` environment variables. When set, the
//! environment is a *hard* budget that also wins over explicit
//! `measurement_time`/`sample_size` calls — CI's bench smoke job relies on
//! this to cap even benches that configure themselves with multi-second
//! measurement windows.
//!
//! Setting `VALKYRIE_BENCH_JSON=<path>` additionally records one JSON
//! object per benchmark in `<path>` (newline-delimited:
//! `{"id", "best_ns", "mean_ns", "rsd_pct", "batches"}`), so perf
//! trajectories can be recorded machine-readably across runs. Records are
//! keyed by id — re-running a bench replaces its record in place, so the
//! file refreshes instead of accumulating stale duplicates.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

pub mod measurement {
    /// Marker for wall-clock measurement (the only kind supported).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Statistics of one [`Bencher::iter`] call across its timed batches.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Best (lowest) batch-mean time per iteration.
    pub best: Duration,
    /// Mean of the batch means.
    pub mean: Duration,
    /// Relative standard deviation of the batch means, in percent of the
    /// mean (0 when fewer than two batches ran).
    pub rsd_pct: f64,
    /// Number of timed batches.
    pub batches: u32,
}

fn stats_of(batch_means: &[Duration], fallback: Duration) -> SampleStats {
    if batch_means.is_empty() {
        return SampleStats {
            best: fallback,
            mean: fallback,
            rsd_pct: 0.0,
            batches: 0,
        };
    }
    let best = *batch_means.iter().min().expect("non-empty");
    let nanos: Vec<f64> = batch_means.iter().map(|d| d.as_nanos() as f64).collect();
    let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
    let rsd_pct = if nanos.len() < 2 || mean <= 0.0 {
        0.0
    } else {
        let var = nanos.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nanos.len() - 1) as f64;
        100.0 * var.sqrt() / mean
    };
    SampleStats {
        best,
        mean: Duration::from_nanos(mean as u64),
        rsd_pct,
        batches: batch_means.len() as u32,
    }
}

/// Per-benchmark timing driver handed to the `|b| ...` closure.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    samples: &'a mut Vec<SampleStats>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly, recording per-iteration timing statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, also used to size the timed batches.  Always run at
        // least one iteration: with a zero warm-up budget, `per_iter`
        // would otherwise be zero and the batch clamp maximal — a
        // million-iteration first batch for an arbitrarily slow routine.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let batch = ((Duration::from_millis(5).as_nanos().max(1) / per_iter.as_nanos().max(1))
            as u64)
            .clamp(1, 1_000_000);

        let budget_start = Instant::now();
        let mut batch_means = Vec::new();
        while budget_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            batch_means.push(t0.elapsed().checked_div(batch as u32).unwrap_or_default());
        }
        self.samples.push(stats_of(&batch_means, per_iter));
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    /// Environment overrides; hard budgets that beat even explicit
    /// `measurement_time`/`sample_size`/`warm_up_time` calls.
    env_warm_up: Option<Duration>,
    env_measurement: Option<Duration>,
}

fn env_budget_ms(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

impl Default for Criterion {
    fn default() -> Self {
        // Far smaller budgets than upstream (3s warm-up / 5s measurement):
        // `cargo bench` over the bench binaries should finish in minutes.
        // CI's bench smoke job caps the budgets further via the
        // environment.
        let env_warm_up = env_budget_ms("VALKYRIE_BENCH_WARMUP_MS");
        let env_measurement = env_budget_ms("VALKYRIE_BENCH_MEASUREMENT_MS");
        Criterion {
            warm_up: env_warm_up.unwrap_or(Duration::from_millis(50)),
            measurement: env_measurement.unwrap_or(Duration::from_millis(200)),
            env_warm_up,
            env_measurement,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(id, self.warm_up, self.measurement, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: self.warm_up,
            default_measurement: self.measurement,
            explicit_measurement: None,
            sample_budget: None,
            criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    warm_up: Duration,
    default_measurement: Duration,
    explicit_measurement: Option<Duration>,
    sample_budget: Option<Duration>,
    criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Upstream scales its statistics by sample count; here fewer samples
    /// just means a proportionally smaller measurement budget.  Recorded
    /// separately from [`Self::measurement_time`] so the two calls are
    /// commutative: an explicit measurement time always wins.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = n.max(1) as u32;
        self.sample_budget = Some(Duration::from_millis(20).saturating_mul(n));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.explicit_measurement = Some(d);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        // The environment (when set) is a hard budget that wins over the
        // group's own configuration; otherwise explicit settings win over
        // the defaults as before.
        let measurement = self.criterion.env_measurement.unwrap_or_else(|| {
            self.explicit_measurement
                .or(self.sample_budget)
                .unwrap_or(self.default_measurement)
        });
        let warm_up = self.criterion.env_warm_up.unwrap_or(self.warm_up);
        let full = format!("{}/{}", self.name, id);
        run_one(&full, warm_up, measurement, f);
        self
    }

    pub fn finish(self) {}
}

/// `cargo bench <name>` passes `<name>` through to the bench binary
/// (`harness = false`); mirror upstream's substring filtering.
fn matches_filter(id: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()))
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    if !matches_filter(id) {
        return;
    }
    let mut samples = Vec::new();
    let mut b = Bencher {
        warm_up,
        measurement,
        samples: &mut samples,
    };
    f(&mut b);
    match samples.last() {
        Some(s) => {
            println!(
                "bench: {id:<55} {:>12}/iter  (mean {} ±{:.1}%, {} batches)",
                format_duration(s.best),
                format_duration(s.mean),
                s.rsd_pct,
                s.batches
            );
            append_json_record(id, s);
        }
        // The closure set state up but never called `iter`.
        None => println!("bench: {id:<55} {:>12}", "no samples"),
    }
}

/// Appends one newline-delimited JSON record to `$VALKYRIE_BENCH_JSON`, if
/// set — the machine-readable channel CI and perf-tracking scripts consume.
/// Bench ids are plain ASCII without quotes or backslashes, so no escaping
/// is needed.
fn append_json_record(id: &str, s: &SampleStats) {
    let Ok(path) = std::env::var("VALKYRIE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    write_json_record(&path, id, s);
}

fn write_json_record(path: &str, id: &str, s: &SampleStats) {
    let line = format!(
        "{{\"id\":\"{id}\",\"best_ns\":{},\"mean_ns\":{},\"rsd_pct\":{:.3},\"batches\":{}}}",
        s.best.as_nanos(),
        s.mean.as_nanos(),
        s.rsd_pct,
        s.batches
    );
    // Records are keyed by id: re-running a bench replaces its record
    // in place (so the file genuinely *refreshes* across runs), while
    // records written by other bench binaries accumulate untouched.
    let marker = format!("\"id\":\"{id}\"");
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .map(|contents| {
            contents
                .lines()
                .filter(|l| !l.is_empty() && !l.contains(&marker))
                .map(String::from)
                .collect()
        })
        .unwrap_or_default();
    lines.push(line);
    let body = lines.join("\n") + "\n";
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("criterion stub: cannot write {path}: {e}");
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// `criterion_group!(name, bench_fn, ...)` — a runner invoking each bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_criterion() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
            env_warm_up: None,
            env_measurement: None,
        }
    }

    #[test]
    fn bench_function_records_a_sample() {
        let mut c = quick_criterion();
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    #[test]
    fn env_budget_caps_explicit_measurement_time() {
        let mut c = quick_criterion();
        c.env_warm_up = Some(Duration::from_millis(1));
        c.env_measurement = Some(Duration::from_millis(5));
        let mut g = c.benchmark_group("capped");
        // Without the env cap this would run for three seconds.
        g.measurement_time(Duration::from_secs(3));
        g.warm_up_time(Duration::from_secs(3));
        let t0 = Instant::now();
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "env budget must cap the group's own settings: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn json_records_append_to_the_configured_path() {
        let path = std::env::temp_dir().join(format!(
            "valkyrie_bench_json_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let stats = stats_of(
            &[Duration::from_nanos(120), Duration::from_nanos(100)],
            Duration::ZERO,
        );
        let path_str = path.to_str().expect("utf-8 temp path");
        write_json_record(path_str, "group/bench_a", &stats);
        write_json_record(path_str, "group/bench_b", &stats);
        // Re-running a bench replaces its record (keyed by id), including
        // ids that are a prefix of another id.
        let rerun = stats_of(&[Duration::from_nanos(80)], Duration::ZERO);
        write_json_record(path_str, "group/bench_a", &rerun);
        write_json_record(path_str, "group/bench", &rerun);
        let contents = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 3, "{contents}");
        assert!(lines[0].contains("\"id\":\"group/bench_b\""));
        assert!(lines[0].contains("\"best_ns\":100"));
        assert!(lines[1].contains("\"id\":\"group/bench_a\""));
        assert!(lines[1].contains("\"best_ns\":80"), "replaced on re-run");
        assert!(lines[2].contains("\"id\":\"group/bench\""));
        assert!(lines[2].starts_with('{') && lines[2].ends_with('}'));
    }

    #[test]
    fn stats_report_best_mean_and_spread() {
        let s = stats_of(
            &[
                Duration::from_nanos(100),
                Duration::from_nanos(110),
                Duration::from_nanos(90),
            ],
            Duration::ZERO,
        );
        assert_eq!(s.best, Duration::from_nanos(90));
        assert_eq!(s.mean, Duration::from_nanos(100));
        assert_eq!(s.batches, 3);
        assert!(s.rsd_pct > 9.0 && s.rsd_pct < 11.0, "{}", s.rsd_pct);
    }

    #[test]
    fn stats_fall_back_when_no_batch_completed() {
        let s = stats_of(&[], Duration::from_nanos(42));
        assert_eq!(s.best, Duration::from_nanos(42));
        assert_eq!(s.mean, Duration::from_nanos(42));
        assert_eq!(s.rsd_pct, 0.0);
        assert_eq!(s.batches, 0);
    }

    #[test]
    fn single_batch_has_zero_spread() {
        let s = stats_of(&[Duration::from_micros(7)], Duration::ZERO);
        assert_eq!(s.best, s.mean);
        assert_eq!(s.rsd_pct, 0.0);
        assert_eq!(s.batches, 1);
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
