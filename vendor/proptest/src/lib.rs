//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) combinators
//! (`prop_map`, tuples, ranges, `Just`, `prop_oneof!`, `collection::vec`,
//! `bool::ANY`), `prop_assert*` / `prop_assume!`, and
//! [`ProptestConfig`](test_runner::ProptestConfig) — on top of the vendored
//! deterministic [`rand`] stub.  Failing inputs are reported (with the seed
//! that reproduces them) but not shrunk; for the invariant-style properties
//! in `tests/properties.rs` that trade-off keeps the runner tiny while still
//! exercising hundreds of random cases per property.

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` filtered the input out; try another case.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 96 keeps the full suite fast while
            // still giving each property a broad random sweep.
            ProptestConfig { cases: 96 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }

    /// Drive one property: generate inputs until `cases` executions pass
    /// (rejections from `prop_assume!` don't count), panicking on the first
    /// failure with the seed that reproduces it.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = match std::env::var("PROPTEST_RNG_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(&s)),
            Err(_) => fnv1a(name),
        };
        let mut executed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while executed < config.cases {
            let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempt += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)))
                .unwrap_or_else(|payload| {
                    // A panicking body (e.g. a plain `.unwrap()`) would otherwise
                    // unwind without the reproducing seed ever being reported.
                    eprintln!(
                        "proptest: property `{name}` panicked at case {executed} \
                     (rng seed {seed})"
                    );
                    std::panic::resume_unwind(payload);
                });
            match outcome {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.cases.saturating_mul(20).max(1000) {
                        panic!(
                            "proptest: property `{name}` rejected too many inputs \
                             ({rejected} rejections for {executed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: property `{name}` failed at case {executed} \
                         (rng seed {seed}): {msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Equal-weight choice between strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($(ref $name,)+) = *self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniform `bool` strategy (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Vector-length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Inclusive `(min, max)` element counts.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*;` — everything the property tests need.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest! { ... }` block: each `fn name(arg in strategy, ...)` body
/// becomes a `#[test]` that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(stringify!($name), &config, |__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(
                        &($strategy),
                        __proptest_rng,
                    );
                )+
                let mut __proptest_case = move
                    || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(v in prop::collection::vec(0u8..255, 2..5)) {
            prop_assert!((2..=4).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                Just(0usize),
                (1usize..4, 1usize..4).prop_map(|(a, b)| a + b),
            ]
        ) {
            prop_assert!(v == 0 || (2..=6).contains(&v));
        }

        #[test]
        fn assume_filters_inputs(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_seed() {
        crate::test_runner::run("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
